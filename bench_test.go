// Benchmarks regenerating the paper's evaluation (§4) at laptop scale, one
// family per table/figure, plus micro-benchmarks of the engine hot paths.
// The full parameter sweeps (the paper's sizes up to v=32) live behind
// cmd/icpp98bench; these testing.B benches pin small instances that solve to
// proven optimality in milliseconds so -bench runs terminate quickly while
// preserving the paper's comparisons:
//
//	BenchmarkTable1_*   — serial A* (pruned/unpruned) vs Chen & Yu B&B
//	BenchmarkFigure6_*  — parallel A* across PPE counts
//	BenchmarkFigure7_*  — parallel Aε* across ε
//	BenchmarkAblation_* — individual pruning techniques
package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bnb"
	"repro/internal/core"
	"repro/internal/dfbb"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/parallel"
	"repro/internal/procgraph"
	"repro/internal/stg"
	"repro/internal/taskgraph"
)

// benchInstance pins one §4.1 workload cell (small enough to solve exactly).
func benchInstance(ccr float64, v int) (*taskgraph.Graph, *procgraph.System) {
	g := gen.MustRandom(gen.RandomConfig{V: v, CCR: ccr, Seed: 1998 ^ (uint64(v) * 0xBF58476D1CE4E5B9)})
	return g, procgraph.Complete(3)
}

func benchSolveSerial(b *testing.B, ccr float64, v int, opt core.Options) {
	b.Helper()
	g, sys := benchInstance(ccr, v)
	b.ReportAllocs()
	var expanded int64
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(g, sys, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Schedule == nil {
			b.Fatal("no schedule")
		}
		expanded = res.Stats.Expanded
	}
	b.ReportMetric(float64(expanded), "states/op")
}

// BenchmarkTable1_AStar measures the pruned serial A* (the paper's "A*"
// column) per CCR.
func BenchmarkTable1_AStar(b *testing.B) {
	for _, ccr := range []float64{0.1, 1.0, 10.0} {
		b.Run(fmt.Sprintf("ccr=%g/v=10", ccr), func(b *testing.B) {
			benchSolveSerial(b, ccr, 10, core.Options{})
		})
	}
}

// BenchmarkTable1_AStarFull measures the unpruned serial A* (the paper's
// "A* full" column) per CCR.
func BenchmarkTable1_AStarFull(b *testing.B) {
	for _, ccr := range []float64{0.1, 1.0, 10.0} {
		b.Run(fmt.Sprintf("ccr=%g/v=10", ccr), func(b *testing.B) {
			benchSolveSerial(b, ccr, 10, core.Options{Disable: core.DisableAllPruning})
		})
	}
}

// BenchmarkTable1_ChenBnB measures the Chen & Yu baseline (the paper's
// "Chen" column) per CCR.
func BenchmarkTable1_ChenBnB(b *testing.B) {
	for _, ccr := range []float64{0.1, 1.0, 10.0} {
		b.Run(fmt.Sprintf("ccr=%g/v=10", ccr), func(b *testing.B) {
			g, sys := benchInstance(ccr, 10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := bnb.Solve(g, sys, bnb.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Schedule == nil {
					b.Fatal("no schedule")
				}
			}
		})
	}
}

// BenchmarkFigure6_ParallelAStar measures the parallel A* across PPE counts
// (fixed instance, paper policies, comm floor 2).
func BenchmarkFigure6_ParallelAStar(b *testing.B) {
	g, sys := benchInstance(0.1, 10)
	for _, q := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("ppes=%d", q), func(b *testing.B) {
			b.ReportAllocs()
			var crit int64
			for i := 0; i < b.N; i++ {
				res, err := parallel.Solve(g, sys, parallel.Options{PPEs: q})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Optimal {
					b.Fatal("not optimal")
				}
				crit = res.Stats.CriticalWork
			}
			b.ReportMetric(float64(crit), "critwork/op")
		})
	}
}

// BenchmarkFigure6_HashDistribution measures the ref.-[15] hash-partitioned
// variant across PPE counts.
func BenchmarkFigure6_HashDistribution(b *testing.B) {
	g, sys := benchInstance(0.1, 10)
	for _, q := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("ppes=%d", q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := parallel.Solve(g, sys, parallel.Options{
					PPEs: q, Distribution: parallel.DistributeHash,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Optimal {
					b.Fatal("not optimal")
				}
			}
		})
	}
}

// BenchmarkFigure7_EpsilonSerial measures the serial Aε* against exact A*
// across ε (the time-ratio panel of Figure 7, serial form).
func BenchmarkFigure7_EpsilonSerial(b *testing.B) {
	g, sys := benchInstance(1.0, 10)
	for _, eps := range []float64{0, 0.2, 0.5} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(g, sys, core.Options{Epsilon: eps})
				if err != nil {
					b.Fatal(err)
				}
				if res.Schedule == nil {
					b.Fatal("no schedule")
				}
			}
		})
	}
}

// BenchmarkFigure7_EpsilonParallel measures the parallel Aε* (the paper
// pairs Figure 7 with 16 PPEs; 4 keeps the bench fast).
func BenchmarkFigure7_EpsilonParallel(b *testing.B) {
	g, sys := benchInstance(1.0, 10)
	for _, eps := range []float64{0, 0.2, 0.5} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := parallel.Solve(g, sys, parallel.Options{PPEs: 4, Epsilon: eps})
				if err != nil {
					b.Fatal(err)
				}
				if res.Schedule == nil {
					b.Fatal("no schedule")
				}
			}
		})
	}
}

// BenchmarkAblation_Prunings measures each §3.2 pruning disabled in turn.
func BenchmarkAblation_Prunings(b *testing.B) {
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"full", core.Options{}},
		{"no-isomorphism", core.Options{Disable: core.DisableIsomorphism}},
		{"no-equivalence", core.Options{Disable: core.DisableEquivalence}},
		{"no-upper-bound", core.Options{Disable: core.DisableUpperBound}},
		{"no-priority", core.Options{Disable: core.DisablePriorityOrder}},
		{"none", core.Options{Disable: core.DisableAllPruning}},
		{"hplus", core.Options{HFunc: core.HPlus}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			benchSolveSerial(b, 1.0, 10, v.opt)
		})
	}
}

// BenchmarkAblation_Engines compares the optimal engines on one instance:
// A* (the paper's), depth-first branch-and-bound with and without the
// duplicate table, and IDA* — the memory/time trade the DESIGN.md engine
// ablation calls out.
func BenchmarkAblation_Engines(b *testing.B) {
	g, sys := benchInstance(1.0, 10)
	run := func(b *testing.B, solve func() (*core.Result, error)) {
		b.Helper()
		b.ReportAllocs()
		var expanded int64
		for i := 0; i < b.N; i++ {
			res, err := solve()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Optimal {
				b.Fatal("not optimal")
			}
			expanded = res.Stats.Expanded
		}
		b.ReportMetric(float64(expanded), "states/op")
	}
	b.Run("astar", func(b *testing.B) {
		run(b, func() (*core.Result, error) { return core.Solve(g, sys, core.Options{}) })
	})
	b.Run("dfbb", func(b *testing.B) {
		run(b, func() (*core.Result, error) { return dfbb.Solve(g, sys, dfbb.Options{}) })
	})
	b.Run("dfbb-table", func(b *testing.B) {
		run(b, func() (*core.Result, error) { return dfbb.Solve(g, sys, dfbb.Options{UseVisited: true}) })
	})
	b.Run("idastar", func(b *testing.B) {
		run(b, func() (*core.Result, error) { return dfbb.SolveIDA(g, sys, dfbb.Options{}) })
	})
}

// BenchmarkHeuristics measures every polynomial-time list scheduler on a
// 100-task instance (the regime the paper contrasts optimal search with).
func BenchmarkHeuristics(b *testing.B) {
	g := gen.MustRandom(gen.RandomConfig{V: 100, CCR: 1.0, Seed: 12, MeanOutDeg: 4})
	sys := procgraph.Complete(8)
	for _, alg := range listsched.All() {
		b.Run(alg.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := alg.Run(g, sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOpenList measures the two OPEN-list implementations under a
// push-heavy mixed workload (the A* hot path).
func BenchmarkOpenList(b *testing.B) {
	mk := map[string]func() core.Queue{
		"best-first": func() core.Queue { return core.NewBestFirstQueue() },
		"focal":      func() core.Queue { return core.NewFocalQueue(0.2) },
	}
	g, sys := benchInstance(1.0, 10)
	m, err := core.NewModel(g, sys)
	if err != nil {
		b.Fatal(err)
	}
	// Harvest a realistic state stream once.
	var stream []*core.State
	var stats core.Stats
	exp := m.NewExpander(core.Options{}, &stats)
	frontier := []*core.State{core.Root()}
	for len(stream) < 4096 && len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		exp.Expand(s, nil, func(c *core.State) {
			stream = append(stream, c)
			if len(frontier) < 512 {
				frontier = append(frontier, c)
			}
		})
	}
	for name, newQ := range mk {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			q := newQ()
			for i := 0; i < b.N; i++ {
				q.Push(stream[i%len(stream)])
				if i%3 == 2 {
					q.Pop()
				}
			}
		})
	}
}

// BenchmarkSTG measures Standard Task Graph parse and emit.
func BenchmarkSTG(b *testing.B) {
	g := gen.MustRandom(gen.RandomConfig{V: 200, CCR: 1.0, Seed: 3, MeanOutDeg: 4})
	var buf strings.Builder
	if err := stg.Write(&buf, g); err != nil {
		b.Fatal(err)
	}
	text := buf.String()
	b.Run("write", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sb strings.Builder
			if err := stg.Write(&sb, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := stg.Read(strings.NewReader(text), stg.ImportOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExpansion isolates the expansion operator (state materialization,
// ready-set scan, child construction) on a mid-size instance.
func BenchmarkExpansion(b *testing.B) {
	g := gen.MustRandom(gen.RandomConfig{V: 24, CCR: 1.0, Seed: 9})
	sys := procgraph.Complete(8)
	m, err := core.NewModel(g, sys)
	if err != nil {
		b.Fatal(err)
	}
	var stats core.Stats
	exp := m.NewExpander(core.Options{}, &stats)
	// Build a small frontier to expand repeatedly.
	var frontier []*core.State
	exp.Expand(core.Root(), nil, func(s *core.State) { frontier = append(frontier, s) })
	for _, s := range frontier {
		exp.Expand(s, nil, func(c *core.State) {
			if len(frontier) < 64 {
				frontier = append(frontier, c)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		s := frontier[i%len(frontier)]
		sink += exp.Expand(s, nil, func(*core.State) {})
	}
	_ = sink
}

// BenchmarkListScheduler measures the linear-time upper-bound heuristic.
func BenchmarkListScheduler(b *testing.B) {
	g := gen.MustRandom(gen.RandomConfig{V: 200, CCR: 1.0, Seed: 4, MeanOutDeg: 4})
	sys := procgraph.Complete(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := listsched.Schedule(g, sys, listsched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLevels measures the O(v+e) graph analyses.
func BenchmarkLevels(b *testing.B) {
	g := gen.MustRandom(gen.RandomConfig{V: 1000, CCR: 1.0, Seed: 4, MeanOutDeg: 6})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.TLevels()
		_ = g.BLevels()
		_ = g.StaticLevels()
	}
}

// BenchmarkGenerator measures the §4.1 workload generator.
func BenchmarkGenerator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = gen.MustRandom(gen.RandomConfig{V: 32, CCR: 1.0, Seed: uint64(i)})
	}
}
