// Heuristics measures the average deviation of classic polynomial-time
// list-scheduling heuristics from the proven optimum — the study the
// paper's introduction motivates: "in the absence of optimal solutions as
// a reference, the average performance deviation of these heuristics is
// unknown. ... optimal solutions for a set of benchmark problems can serve
// as a reference to assess the performance of various scheduling
// heuristics."
//
// For each CCR of the §4.1 workload it solves a batch of instances
// optimally with A*, runs every heuristic in the library on the same
// instances, and reports each heuristic's average and worst deviation.
//
// Run with: go run ./examples/heuristics
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	tasks     = 11
	instances = 8
)

func main() {
	fmt.Printf("workload: %d instances x %d tasks per CCR, 3 fully connected PEs\n",
		instances, tasks)
	fmt.Println("reference: serial A* with all §3.2 prunings (proven optimal)")

	heuristics := repro.Heuristics()
	sys := repro.Complete(3)

	for _, ccr := range []float64{0.1, 1.0, 10.0} {
		// Solve the batch optimally once.
		var graphs []*repro.Graph
		var optima []int32
		for seed := uint64(0); seed < instances; seed++ {
			g, err := repro.RandomGraph(repro.RandomGraphConfig{V: tasks, CCR: ccr, Seed: 2000 + seed})
			if err != nil {
				log.Fatal(err)
			}
			res, err := repro.ScheduleOptimal(g, sys)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Optimal {
				log.Fatalf("ccr=%g seed=%d: optimality not proven", ccr, seed)
			}
			graphs = append(graphs, g)
			optima = append(optima, res.Length)
		}

		fmt.Printf("\nCCR = %g\n%-24s %10s %10s %10s\n", ccr, "heuristic", "avg dev", "max dev", "optimal#")
		for _, h := range heuristics {
			var sumDev, maxDev float64
			optCount := 0
			for i, g := range graphs {
				s, err := h.Run(g, sys)
				if err != nil {
					log.Fatal(err)
				}
				if s.Length < optima[i] {
					log.Fatalf("%s beat the proven optimum on ccr=%g #%d — impossible", h.Name, ccr, i)
				}
				dev := 100 * (float64(s.Length) - float64(optima[i])) / float64(optima[i])
				sumDev += dev
				if dev > maxDev {
					maxDev = dev
				}
				if s.Length == optima[i] {
					optCount++
				}
			}
			fmt.Printf("%-24s %9.1f%% %9.1f%% %7d/%d\n",
				h.Name, sumDev/float64(len(graphs)), maxDev, optCount, len(graphs))
		}
	}
	fmt.Println()
	fmt.Println("higher CCR widens the gap: communication-blind orderings misplace tasks more often")
}
