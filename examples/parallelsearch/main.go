// Parallelsearch demonstrates the parallel A* of §3.3: a §4.1 random task
// graph scheduled by 1, 2, 4, and 8 PPE workers, comparing wall time,
// modeled speedup (the Paragon substitution of DESIGN.md §5), the extra
// state generation the paper notes for the parallel algorithm, and the two
// state-distribution policies (the paper's neighbor round-robin vs
// hash-partitioned duplicate pruning, ref. [15]).
//
// Run with: go run ./examples/parallelsearch
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
	"repro/internal/parallel"
)

func main() {
	g, err := repro.RandomGraph(repro.RandomGraphConfig{V: 11, CCR: 0.1, Seed: 342})
	if err != nil {
		log.Fatal(err)
	}
	sys := repro.Complete(3)

	fmt.Println("== Parallel A* on a random §4.1 task graph ==")
	fmt.Println(g)
	fmt.Printf("host cores: %d (wall speedups are capped by this)\n\n", runtime.GOMAXPROCS(0))

	t0 := time.Now()
	serial, err := repro.ScheduleOptimal(g, sys)
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(t0)
	fmt.Printf("serial A*: length %d in %v (%d expansions)\n\n",
		serial.Length, serialTime.Round(time.Millisecond), serial.Stats.Expanded)

	fmt.Printf("%-14s %5s %10s %8s %8s %9s %7s\n",
		"policy", "PPEs", "time", "wall-x", "model-x", "work-x", "rounds")
	for _, dist := range []parallel.Distribution{parallel.DistributeNeighborRR, parallel.DistributeHash} {
		for _, q := range []int{1, 2, 4, 8} {
			t1 := time.Now()
			res, err := repro.ScheduleParallelWith(g, sys, repro.ParallelOptions{
				PPEs:         q,
				Distribution: dist,
				PeriodFloor:  64, // amortize rounds on a modern host; the paper's floor is 2
			})
			if err != nil {
				log.Fatal(err)
			}
			pt := time.Since(t1)
			if res.Length != serial.Length || !res.Optimal {
				log.Fatalf("parallel run (q=%d) disagrees with serial: %d vs %d", q, res.Length, serial.Length)
			}
			modeled := 0.0
			if res.Stats.CriticalWork > 0 {
				modeled = float64(serial.Stats.Expanded) / float64(res.Stats.CriticalWork)
			}
			fmt.Printf("%-14s %5d %10v %8.2f %8.2f %9.2f %7d\n",
				dist, q, pt.Round(time.Millisecond),
				serialTime.Seconds()/pt.Seconds(), modeled,
				float64(res.Stats.Expanded)/float64(serial.Stats.Expanded),
				res.Stats.Rounds)
		}
	}
	fmt.Println("\nwall-x = wall-clock speedup vs serial; model-x = speedup with one core per")
	fmt.Println("PPE (critical-path work); work-x = parallel expansions / serial expansions.")
	fmt.Println("The paper's Figure 6 shape: speedup grows with PPEs; hash partitioning keeps")
	fmt.Println("work-x near 1 while the paper's local CLOSED lists re-explore shared regions.")
}
