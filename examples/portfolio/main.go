// Portfolio demonstrates the concurrent solve service: a batch of
// instances dispatched across a bounded worker pool (with the compiled
// search model memoized per instance), then an engine race on a single
// hard instance — every registered engine attacks the same state space and
// the first proven optimum cancels the rest.
//
// Run with: go run ./examples/portfolio
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	sys := repro.Complete(3)

	// --- batch: many instances, several engines, bounded concurrency ---
	var reqs []repro.SolveRequest
	for seed := uint64(1); seed <= 4; seed++ {
		g, err := repro.RandomGraph(repro.RandomGraphConfig{V: 10, CCR: 1.0, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		// The same instance twice under different engines: the pool builds
		// its search model once.
		reqs = append(reqs,
			repro.SolveRequest{Graph: g, System: sys, Engine: "astar"},
			repro.SolveRequest{Graph: g, System: sys, Engine: "dfbb"},
		)
	}
	t0 := time.Now()
	resps := repro.SolveBatch(context.Background(), reqs)
	fmt.Printf("== batch: %d requests in %v ==\n", len(reqs), time.Since(t0).Round(time.Millisecond))
	for i, r := range resps {
		if r.Err != nil {
			log.Fatalf("request %d: %v", i, r.Err)
		}
		fmt.Printf("  %-22s %-8s length=%-4d optimal=%-5v expanded=%d\n",
			reqs[i].Graph.Name(), r.Engine, r.Result.Length, r.Result.Optimal, r.Result.Stats.Expanded)
	}

	// --- portfolio: race engines, keep the first proven optimum ---
	g, err := repro.RandomGraph(repro.RandomGraphConfig{V: 20, CCR: 1.0, MeanOutDeg: 6, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"astar", "dfbb", "ida", "bnb"}
	t0 = time.Now()
	pf, err := repro.SolvePortfolio(context.Background(), g, sys, names, repro.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== portfolio on %s (%v) ==\n", g.Name(), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("winner: %-8s length=%d proven-optimal=%v expanded=%d\n",
		pf.Winner, pf.Result.Length, pf.Result.Optimal, pf.Result.Stats.Expanded)
	for name, lose := range pf.Losers {
		fmt.Printf("loser:  %-8s cancelled after %d expansions (optimal=%v)\n",
			name, lose.Stats.Expanded, lose.Optimal)
	}
	for name, err := range pf.Errs {
		fmt.Printf("failed: %-8s %v\n", name, err)
	}
}
