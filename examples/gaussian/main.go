// Gaussian schedules the task graph of Gaussian elimination — the kind of
// regular numerical workload the paper's introduction motivates — onto a
// 2x2 mesh multiprocessor, and compares three schedulers along the paper's
// quality/effort spectrum:
//
//   - the linear-time list heuristic (no guarantee),
//   - the approximate Aε* with ε = 0.2 (bounded 20% suboptimality),
//   - the exact A* (provably optimal).
//
// It prints each schedule's length, the deviation of the heuristics from
// the optimum, and the optimal Gantt chart.
//
// Run with: go run ./examples/gaussian
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const matrixSize = 5 // GE on a 5x5 matrix: 14 tasks
	g, err := repro.GaussianElimination(matrixSize, 40, 80)
	if err != nil {
		log.Fatal(err)
	}
	sys := repro.Mesh(2, 2)

	fmt.Printf("== Gaussian elimination (n=%d) on a 2x2 mesh ==\n", matrixSize)
	fmt.Println(g)
	cp, _ := g.CriticalPath()
	fmt.Printf("critical path = %d, total work = %d\n\n", cp, g.TotalWork())

	t0 := time.Now()
	ls, err := repro.ScheduleList(g, sys, repro.ListOptions{})
	if err != nil {
		log.Fatal(err)
	}
	lsTime := time.Since(t0)

	t0 = time.Now()
	approx, err := repro.ScheduleApprox(g, sys, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	approxTime := time.Since(t0)

	t0 = time.Now()
	exact, err := repro.ScheduleOptimal(g, sys)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(t0)
	if !exact.Optimal {
		log.Fatal("exact solve did not prove optimality")
	}

	dev := func(l int32) float64 {
		return 100 * float64(l-exact.Length) / float64(exact.Length)
	}
	fmt.Printf("%-22s %8s %12s %10s\n", "scheduler", "length", "vs optimal", "time")
	fmt.Printf("%-22s %8d %11.1f%% %10v\n", "list heuristic", ls.Length, dev(ls.Length), lsTime.Round(time.Microsecond))
	fmt.Printf("%-22s %8d %11.1f%% %10v\n", "Aε* (ε=0.2)", approx.Length, dev(approx.Length), approxTime.Round(time.Microsecond))
	fmt.Printf("%-22s %8d %11.1f%% %10v\n", "A* (optimal)", exact.Length, 0.0, exactTime.Round(time.Microsecond))
	fmt.Printf("\nA* search effort: expanded %d states, generated %d, peak OPEN %d\n\n",
		exact.Stats.Expanded, exact.Stats.Generated, exact.Stats.MaxOpen)

	fmt.Println("optimal schedule:")
	fmt.Print(exact.Schedule.Gantt(8))
}
