// Epsilon sweeps the Aε* approximation factor on one §4.1 workload
// instance (CCR 10, where intermediate state costs vary most) — the
// serial counterpart of the paper's Figure 7 study: how much schedule
// quality is traded for how much search effort.
//
// For each ε it reports the schedule length, the actual deviation from the
// proven optimum (the paper's Figure 7(a)/(c): actual deviations stay well
// below the ε bound), the expansion count, and the effort ratio against
// exact A* (Figure 7(b)/(d): 10–40% saved at ε = 0.2, 50–70% at ε = 0.5).
//
// Run with: go run ./examples/epsilon
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	g, err := repro.RandomGraph(repro.RandomGraphConfig{V: 12, CCR: 10.0, Seed: 1998})
	if err != nil {
		log.Fatal(err)
	}
	sys := repro.Complete(3)
	fmt.Printf("instance: %d tasks, CCR 10.0, %s\n\n", g.NumNodes(), sys)

	start := time.Now()
	exact, err := repro.ScheduleOptimal(g, sys)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(start)
	if !exact.Optimal {
		log.Fatal("exact search did not prove optimality (instance too large?)")
	}
	fmt.Printf("exact A*: length %d, %d expansions, %v\n\n",
		exact.Length, exact.Stats.Expanded, exactTime.Round(time.Millisecond))

	fmt.Printf("%6s %8s %12s %12s %12s %12s\n",
		"ε", "length", "deviation", "bound", "expansions", "time ratio")
	for _, eps := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 1.0} {
		start = time.Now()
		res, err := repro.ScheduleApprox(g, sys, eps)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if err := res.Schedule.Validate(); err != nil {
			log.Fatalf("ε=%g produced an invalid schedule: %v", eps, err)
		}
		dev := 100 * (float64(res.Length) - float64(exact.Length)) / float64(exact.Length)
		if float64(res.Length) > (1+eps)*float64(exact.Length) {
			log.Fatalf("ε=%g violated its bound: %d > (1+ε)·%d", eps, res.Length, exact.Length)
		}
		fmt.Printf("%6.2f %8d %11.1f%% %11.0f%% %12d %11.2fx\n",
			eps, res.Length, dev, 100*eps, res.Stats.Expanded,
			float64(elapsed)/float64(exactTime))
	}
	fmt.Println()
	fmt.Println("deviations stay well below the ε bound (Figure 7a/c); effort falls as ε grows (Figure 7b/d)")
}
