// Quickstart reproduces the paper's worked example end to end: the 6-task
// DAG of Figure 1(a) scheduled onto the 3-processor ring of Figure 1(b).
//
// It prints the graph analysis of Figure 2 (static levels, b-levels,
// t-levels), solves with the serial A* and its pruning techniques, and
// renders the optimal schedule of Figure 4 (length 14) as a Gantt chart,
// comparing against the linear-time list heuristic and the Aε*
// approximation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.PaperExample()
	sys := repro.Ring(3)

	fmt.Println("== Kwok & Ahmad ICPP'98 — Figure 1 worked example ==")
	fmt.Println(g)
	fmt.Println(sys)
	fmt.Println()

	// Figure 2: the node attributes that drive priorities and the heuristic.
	sl := g.StaticLevels()
	bl := g.BLevels()
	tl := g.TLevels()
	fmt.Printf("%-6s %8s %8s %8s\n", "node", "sl", "b-level", "t-level")
	for n := int32(0); int(n) < g.NumNodes(); n++ {
		fmt.Printf("%-6s %8d %8d %8d\n", g.Label(n), sl[n], bl[n], tl[n])
	}
	fmt.Println()

	// The upper bound the A* prunes with comes from list scheduling.
	ls, err := repro.ScheduleList(g, sys, repro.ListOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("list-scheduling heuristic (upper bound U): length %d\n", ls.Length)

	// The serial A* with all §3.2 prunings proves the optimum.
	res, err := repro.ScheduleOptimal(g, sys)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		log.Fatalf("schedule failed validation: %v", err)
	}
	fmt.Printf("A* optimal schedule: length %d (paper: 14), expanded %d states, generated %d\n",
		res.Length, res.Stats.Expanded, res.Stats.Generated)

	// Aε* trades a bounded amount of quality for time.
	approx, err := repro.ScheduleApprox(g, sys, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Aε*(0.2): length %d (guaranteed <= %.1f)\n\n", approx.Length, 1.2*float64(res.Length))

	fmt.Println("optimal schedule (compare the paper's Figure 4):")
	fmt.Print(res.Schedule.Gantt(8))
}
