// Lowmem contrasts the memory profiles of the optimal engines: the
// paper's A* (whose OPEN/CLOSED lists grow with the search — "a huge
// memory requirement to store the search states is also another common
// problem", §1) against depth-first branch-and-bound and IDA*, which keep
// only the DFS spine.
//
// All three provably reach the same optimum; the table shows what each
// pays in expansions (time) and retained states (memory) for it.
//
// Run with: go run ./examples/lowmem
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	g, err := repro.RandomGraph(repro.RandomGraphConfig{V: 10, CCR: 1.0, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	sys := repro.Complete(3)
	fmt.Printf("instance: %d tasks, CCR 1.0, %s\n\n", g.NumNodes(), sys)

	type row struct {
		name string
		run  func() (*repro.Result, error)
	}
	rows := []row{
		{"A* (§3.1)", func() (*repro.Result, error) {
			return repro.ScheduleOptimal(g, sys)
		}},
		{"DFBB", func() (*repro.Result, error) {
			return repro.ScheduleDFBB(g, sys, repro.DepthFirstOptions{})
		}},
		{"DFBB+table", func() (*repro.Result, error) {
			return repro.ScheduleDFBB(g, sys, repro.DepthFirstOptions{UseVisited: true})
		}},
		{"IDA*", func() (*repro.Result, error) {
			return repro.ScheduleIDAStar(g, sys, repro.DepthFirstOptions{})
		}},
	}

	fmt.Printf("%-12s %8s %9s %12s %14s %12s\n",
		"engine", "length", "optimal", "expansions", "peak retained", "time")
	var want int32
	for i, r := range rows {
		start := time.Now()
		res, err := r.run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if i == 0 {
			want = res.Length
		} else if res.Length != want {
			log.Fatalf("%s found %d; A* found %d — engines disagree", r.name, res.Length, want)
		}
		// Peak retained states: OPEN+CLOSED for A*, the DFS spine (plus
		// the optional table) for the depth-first engines.
		retained := res.Stats.MaxOpen + res.Stats.VisitedSize
		fmt.Printf("%-12s %8d %9v %12d %14d %12v\n",
			r.name, res.Length, res.Optimal, res.Stats.Expanded, retained,
			elapsed.Round(time.Microsecond))
	}
	fmt.Println()
	fmt.Println("DFBB and IDA* retain O(v) states; A* trades memory for far fewer expansions.")
}
