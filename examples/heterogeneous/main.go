// Heterogeneous schedules an FFT butterfly graph onto a system with
// processors of different speeds (the paper's §2 model allows heterogeneous
// PEs; its experiments use homogeneous ones). A fast PE attracts the
// critical path while the slower PEs absorb off-path work — visible in the
// Gantt chart. The example also shows that the optimal schedule beats both
// a homogeneous view of the machine and the list heuristic.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g, err := repro.FFT(4, 30, 12) // 4-point FFT: 12 tasks in 3 ranks
	if err != nil {
		log.Fatal(err)
	}
	// One double-speed PE (0.5x execution time), two regular, one half-speed.
	speeds := []float64{0.5, 1.0, 1.0, 2.0}
	sys := repro.CompleteWith(4, repro.SystemConfig{Speeds: speeds})

	fmt.Println("== FFT(4) on a heterogeneous 4-PE system ==")
	fmt.Println(g)
	fmt.Printf("PE speeds (execution-time multipliers): %v\n\n", speeds)

	ls, err := repro.ScheduleList(g, sys, repro.ListOptions{})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := repro.ScheduleOptimal(g, sys)
	if err != nil {
		log.Fatal(err)
	}
	if !exact.Optimal {
		log.Fatal("optimality not proven")
	}
	if err := exact.Schedule.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("list heuristic:   length %d\n", ls.Length)
	fmt.Printf("A* optimal:       length %d (expanded %d states)\n", exact.Length, exact.Stats.Expanded)

	// The same graph on a homogeneous system of four 1.0x PEs, for contrast:
	// the fast PE is worth real schedule length.
	homo, err := repro.ScheduleOptimal(g, repro.Complete(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("homogeneous 4xPE: length %d (all speeds 1.0)\n\n", homo.Length)

	fmt.Println("optimal heterogeneous schedule (PE 0 runs at double speed):")
	fmt.Print(exact.Schedule.Gantt(8))
	fmt.Printf("\nPEs used: %d/%d, efficiency %.2f\n",
		exact.Schedule.ProcsUsed(), sys.NumProcs(), exact.Schedule.Efficiency())
}
