// Searchtree reproduces the paper's search-tree figures: the serial A*
// tree of Figure 3 and the 2-PPE parallel A* tree of Figure 5, both for
// the Figure 1 worked example (6 tasks onto a 3-processor ring).
//
// Every printed state shows the assignment that created it and its cost
// split f = g + h exactly as the figures do; expanded states carry their
// expansion order (per PPE in the parallel run), and goals are marked. The
// serial tree demonstrates what the pruning techniques leave of the > 3^6
// = 729-state exhaustive space.
//
// Run with: go run ./examples/searchtree
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	g := repro.PaperExample()
	sys := repro.Ring(3)

	// --- Figure 3: serial A* ---
	rec := repro.NewSearchRecorder(g)
	res, err := repro.ScheduleOptimalWith(g, sys, repro.SolveOptions{Tracer: rec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 3: serial A* search tree ==")
	fmt.Printf("states generated: %d   expanded: %d   (exhaustive tree: > 3^6 = 729)\n",
		rec.GeneratedCount(), rec.ExpandedCount())
	fmt.Printf("optimal schedule length: %d (paper: 14)\n\n", res.Length)
	if err := rec.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// --- Figure 5: parallel A* on 2 PPEs ---
	prec := repro.NewSearchRecorder(g)
	pres, err := repro.ScheduleParallelWith(g, sys, repro.ParallelOptions{
		PPEs:      2,
		TracerFor: prec.ForPPE,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("== Figure 5: parallel A* search tree (2 PPEs) ==")
	fmt.Printf("states generated: %d   expanded: %d   length: %d (optimal=%v)\n",
		prec.GeneratedCount(), prec.ExpandedCount(), pres.Length, pres.Optimal)
	fmt.Println("(the parallel run generates a few extra states the serial search avoids —")
	fmt.Println(" the effect the paper notes below Figure 5)")
	fmt.Println()
	if err := prec.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
