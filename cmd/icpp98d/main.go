// Command icpp98d is the network solve daemon: it serves the HTTP/JSON job
// API of internal/server over the engine registry and solver pool, so any
// client can submit scheduling instances, poll or stream their progress,
// and fetch finished schedules without linking the solver.
//
//	icpp98d -addr :8098 -workers 8 -store 4096 -ttl 30m
//
// With -store-dir the job store is file-backed (append-only WAL compacted
// into a snapshot): a restarted daemon recovers its retained jobs —
// finished results stay fetchable, and with -cluster, jobs that were
// leased to a worker mid-flight are resumed: the lease journal rides the
// same WAL, and a worker that long-polls back within -adopt-grace presents
// its lease token and keeps solving (leases nobody reclaims are re-queued
// without charging the job's retry budget). Mid-flight jobs without a
// live lease read failed with an "interrupted" error, as before.
// Identical submissions are answered from a
// content-addressed schedule cache (-cache-bytes budgets it; submit with
// "cache":"bypass" to force a fresh solve). /metrics serves Prometheus
// text-format counters and latency histograms, and -debug-addr serves
// net/http/pprof on a separate, private port. Every job carries a trace ID
// from submission: GET /v1/jobs/{id}/trace returns its lifecycle spans and
// sampled search telemetry, -log-format/-log-level shape the structured
// logs (trace_id on every job record), and -slow-job flags stragglers with
// their final telemetry summary. See docs/OBSERVABILITY.md.
//
// Submit with curl (see docs/API.md for the full API):
//
//	curl -s localhost:8098/v1/jobs -d '{
//	  "graph_text": "graph app\nnode 0 2\nnode 1 3\nedge 0 1 1\n",
//	  "system": "ring:3", "engine": "astar"}'
//
// or with the bundled client:
//
//	icpp98 client -addr http://localhost:8098 submit -engine astar -procs ring:3 -wait g.tg
//
// With -cluster the daemon embeds the internal/cluster coordinator:
// icpp98worker processes register over /v1/workers, queued jobs are leased
// to them (with heartbeat-based failover back onto survivors), and the
// daemon's local pool remains the transparent fallback when no workers are
// registered. See DESIGN.md §9.
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight searches are
// cancelled through their job contexts (each returns its best incumbent
// and is recorded as cancelled) before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served on -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// newLogger builds the daemon's structured logger: text or JSON records on
// stderr, filtered at the given level. Every job-scoped record carries the
// job's trace_id, so `grep <trace_id>` (or a log pipeline filter) pulls one
// job's whole story out of a busy daemon's stream.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func main() {
	addr := flag.String("addr", ":8098", "listen address")
	workers := flag.Int("workers", 0, "max concurrently running jobs (0 = GOMAXPROCS)")
	storeCap := flag.Int("store", 1024, "max retained jobs (active + finished)")
	ttl := flag.Duration("ttl", 15*time.Minute, "how long finished jobs stay fetchable")
	clustered := flag.Bool("cluster", false, "accept icpp98worker registrations and lease jobs to them")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "with -cluster: re-queue a leased job unreported for this long")
	workerTimeout := flag.Duration("worker-timeout", 10*time.Second, "with -cluster: deregister a worker silent for this long")
	jobAttempts := flag.Int("job-attempts", 3, "with -cluster: attempts a job may lose to worker death/expiry before it fails")
	adoptGrace := flag.Duration("adopt-grace", 0, "with -cluster and -store-dir: how long after a restart workers may reclaim recovered leases (0 = 2×lease-ttl)")
	backlog := flag.Int("backlog-per-slot", 0, "503 submissions once active jobs reach this × aggregate capacity (0 = store-bound only)")
	storeDir := flag.String("store-dir", "", "persist jobs under this directory (WAL + snapshot); restart recovers them. Empty = in-memory")
	cacheBytes := flag.Int64("cache-bytes", 0, "schedule-cache byte budget (0 = 64 MiB, negative = disable)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	slowJob := flag.Duration("slow-job", 0, "log a warning with the final telemetry summary for jobs slower end-to-end than this (0 = disabled)")
	sampleInterval := flag.Duration("sample-interval", 0, "search-telemetry sampling cadence (0 = 250ms default)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icpp98d:", err)
		os.Exit(1)
	}

	srv, err := server.Open(server.Config{
		Workers: *workers, StoreCap: *storeCap, TTL: *ttl, BacklogPerSlot: *backlog,
		StoreDir: *storeDir, CacheBytes: *cacheBytes,
		Logger: logger, SlowJob: *slowJob, SampleInterval: *sampleInterval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "icpp98d:", err)
		os.Exit(1)
	}
	var coord *cluster.Coordinator
	if *clustered {
		coord = cluster.NewCoordinator(cluster.Config{
			LeaseTTL:      *leaseTTL,
			WorkerTimeout: *workerTimeout,
			MaxAttempts:   *jobAttempts,
			AdoptGrace:    *adoptGrace,
			Logger:        logger,
			Leases:        srv.LeaseStore(),
		})
		srv.EnableCluster(coord)
	}
	// Re-offer recovered mid-flight jobs before the listener opens: the
	// coordinator parks their journaled leases for adoption, so a worker
	// whose first request races the resume still finds its lease waiting.
	if resumed := srv.ResumeRecovered(); resumed > 0 {
		logger.Info("resumed recovered jobs", "jobs", resumed)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	// pprof stays off the public mux: the job API port never exposes the
	// profiler, and the debug port serves nothing but it (DefaultServeMux
	// registration by the pprof import).
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "icpp98d: debug listener:", err)
			}
		}()
	}
	mode := "local pool only"
	if *clustered {
		mode = "cluster coordinator"
	}
	store := "in-memory"
	if *storeDir != "" {
		store = *storeDir
	}
	fmt.Fprintf(os.Stderr, "icpp98d: serving on %s (workers=%d store=%d ttl=%v jobs=%s, %s)\n",
		*addr, *workers, *storeCap, *ttl, store, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "icpp98d:", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "icpp98d: %v, shutting down\n", got)
	}

	// Cancel the jobs first: that unblocks the long-lived /events streams
	// (which wait on the jobs' terminal states) and frees the workers, so
	// the handler drain below completes promptly instead of riding out the
	// whole timeout whenever a client is mid-stream.
	srv.Close()
	if coord != nil {
		coord.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx) // stop accepting, drain handlers
}
