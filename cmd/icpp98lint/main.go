// Command icpp98lint statically enforces this repo's concurrency,
// hot-path, and wire invariants. It runs two ways:
//
//	icpp98lint ./...                       # standalone multichecker
//	go vet -vettool=$(which icpp98lint) ./...  # unit checker under cmd/go
//
// The vettool mode speaks cmd/go's vet.cfg protocol (-V=full, -flags,
// then one JSON config per package), so findings participate in go
// vet's build cache: clean packages are not re-analyzed.
//
// Exit status: 0 clean, 1 tool failure, 2 findings. Suppress a finding
// with a same-line or preceding-line comment:
//
//	//icpp98:allow <analyzer> <reason>
//
// The reason is mandatory; see docs/STATIC_ANALYSIS.md.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	analyzers := suite.Analyzers()

	// cmd/go probes the tool before first use: -V=full must print a
	// stable tool ID (cache key), -flags the analyzer flags (none).
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Printf("icpp98lint version %s\n", toolID())
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return driver.RunUnitchecker(args[0], analyzers)
		}
	}

	// Standalone: analyze the patterns (default ./...) including test
	// variants, print findings in file:line order.
	patterns := args
	for _, a := range patterns {
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(os.Stderr, "icpp98lint: unknown flag %s\nusage: icpp98lint [packages]  (or as go vet -vettool)\n", a)
			return 1
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "icpp98lint:", err)
		return 1
	}
	res, err := driver.RunStandalone(dir, patterns, true, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icpp98lint:", err)
		return 1
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(res.Diagnostics) > 0 {
		return 2
	}
	return 0
}

// toolID derives the tool's cache-busting version from its own binary:
// cmd/go keys vet results on this string, and a rebuilt linter must not
// reuse stale results. The word must not be "devel" (cmd/go treats that
// form specially and expects a buildID field).
func toolID() string {
	exe, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			return fmt.Sprintf("v0-%x", sum[:12])
		}
	}
	return "v0-unknown"
}
