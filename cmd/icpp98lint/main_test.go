package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test binary's working directory")
		}
		dir = parent
	}
}

// TestSuiteCleanOverRepo is the smoke test CI's lint job depends on: the
// full suite over every package (tests included) must be finding-free —
// each invariant violation is either fixed or carries a documented
// //icpp98:allow suppression.
func TestSuiteCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	res, err := driver.RunStandalone(repoRoot(t), []string{"./..."}, true, suite.Analyzers())
	if err != nil {
		t.Fatalf("standalone run: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
	if res.Packages == 0 {
		t.Fatal("no packages analyzed")
	}
}

// TestVettoolProtocol drives the real thing: build the binary, hand it to
// `go vet -vettool` for a package with known hot-path annotations, and
// require a clean exit. This exercises -V=full, -flags, the vet.cfg
// unitchecker path, and .vetx fact plumbing exactly as CI runs them.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the lint binary and runs go vet; skipped in -short")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "icpp98lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/icpp98lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building icpp98lint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/core/...", "./internal/heapx/...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestVettoolRejectsViolation proves the wired-up binary actually fails
// the build on a seeded violation, with a diagnostic naming the invariant.
func TestVettoolRejectsViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the lint binary and runs go vet; skipped in -short")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "icpp98lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/icpp98lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building icpp98lint: %v\n%s", err, out)
	}

	mod := t.TempDir()
	writeFile(t, filepath.Join(mod, "go.mod"), "module seeded\n\ngo 1.22\n")
	writeFile(t, filepath.Join(mod, "seed.go"), `package seeded

//icpp98:hotpath
func leaky(n int) []int {
	return make([]int, n)
}
`)
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet accepted a seeded hot-path allocation:\n%s", out)
	}
	if !strings.Contains(string(out), "hot-path invariant") {
		t.Fatalf("diagnostic does not name the invariant:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
