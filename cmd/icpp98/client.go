package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// cmdClient talks to a running icpp98d daemon with the wire types of
// internal/server — the same structs the daemon decodes, so client and
// server cannot drift apart:
//
//	icpp98 client -addr http://localhost:8098 engines
//	icpp98 client submit -engine astar -procs ring:3 g.tg
//	icpp98 client submit -engines astar,dfbb,bnb -wait g.tg   # portfolio
//	icpp98 client status job-1
//	icpp98 client watch job-1                                 # stream progress
//	icpp98 client result -gantt job-1
//	icpp98 client cancel job-1
//	icpp98 client trace job-1                                 # lifecycle timeline
//	icpp98 client workers                                     # cluster workers
func cmdClient(args []string) {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8098", "daemon base URL")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		fatal(fmt.Errorf("client needs a subcommand: submit | status | watch | result | cancel | trace | list | engines | health | metrics | workers"))
	}
	c := &client{base: strings.TrimRight(*addr, "/")}
	switch rest[0] {
	case "submit":
		c.submit(rest[1:])
	case "status":
		c.status(rest[1:])
	case "watch":
		c.watch(rest[1:])
	case "result":
		c.result(rest[1:])
	case "cancel":
		c.cancel(rest[1:])
	case "trace":
		c.trace(rest[1:])
	case "list":
		c.list()
	case "engines":
		c.engines()
	case "health":
		c.health()
	case "metrics":
		c.metrics(rest[1:])
	case "workers":
		c.workers()
	default:
		fatal(fmt.Errorf("unknown client subcommand %q", rest[0]))
	}
}

type client struct {
	base string
}

// do performs one request and decodes the JSON response into out (skipped
// when out is nil). Any non-2xx response is surfaced as the server's error
// message.
func (c *client) do(method, path string, body, out any) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		// Every /v1 error is a {code, message, job_id?} envelope; surface
		// the machine-readable code alongside the message so scripts can
		// match on it (see docs/API.md for the code inventory).
		var e server.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Message != "" {
			if e.JobID != "" {
				fatal(fmt.Errorf("%s (%s, job %s): %s", resp.Status, e.Code, e.JobID, e.Message))
			}
			fatal(fmt.Errorf("%s (%s): %s", resp.Status, e.Code, e.Message))
		}
		fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data))))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			fatal(err)
		}
	}
}

// submit reads a graph file (or stdin), posts the job, and either prints
// the job ID or — with -wait — polls until the job is terminal and prints
// the result like `icpp98 schedule` would.
func (c *client) submit(args []string) {
	fs := flag.NewFlagSet("client submit", flag.ExitOnError)
	engName := fs.String("engine", "astar", "registry engine to run")
	engines := fs.String("engines", "", "comma list of engines to race as a portfolio (overrides -engine)")
	procs := fs.String("procs", "", "target system spec, e.g. ring:3 (default complete:V)")
	eps := fs.Float64("eps", 0, "ε for the ε-capable engines")
	budget := fs.Int64("budget", 0, "expansion budget (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none)")
	ppes := fs.Int("ppes", 0, "PPEs for the parallel engine")
	wait := fs.Bool("wait", false, "poll until the job finishes and print the result")
	gantt := fs.Bool("gantt", true, "with -wait, print the Gantt chart")
	noCache := fs.Bool("no-cache", false, "bypass the daemon's schedule cache and force a fresh solve")
	fs.Parse(args)

	// The graph travels as the native text format: the daemon parses and
	// validates it server-side, so the client needs no graph code at all.
	var text []byte
	var err error
	if fs.NArg() == 0 || fs.Arg(0) == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		fatal(err)
	}
	req := server.SubmitRequest{
		GraphText: string(text),
		Engine:    *engName,
		Config: server.JobConfig{
			Epsilon:     *eps,
			MaxExpanded: *budget,
			TimeoutMS:   timeout.Milliseconds(),
			PPEs:        *ppes,
		},
	}
	if strings.HasSuffix(fs.Arg(0), ".stg") {
		req.GraphText, req.GraphSTG = "", string(text)
	}
	if *engines != "" {
		req.Engine = ""
		for _, name := range strings.Split(*engines, ",") {
			if name = strings.TrimSpace(name); name != "" {
				req.Engines = append(req.Engines, name)
			}
		}
	}
	if *procs != "" {
		spec, err := json.Marshal(*procs)
		if err != nil {
			fatal(err)
		}
		req.System = spec
	}
	if *noCache {
		req.Cache = server.CacheBypass
	}

	var sub server.SubmitResponse
	c.do(http.MethodPost, "/v1/jobs", req, &sub)
	if !*wait {
		fmt.Println(sub.ID)
		return
	}

	for {
		var st server.JobStatus
		c.do(http.MethodGet, "/v1/jobs/"+sub.ID, nil, &st)
		if st.State != server.StateQueued && st.State != server.StateRunning {
			if st.State == server.StateFailed {
				fatal(fmt.Errorf("job %s failed: %s", st.ID, st.Error))
			}
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	format := ""
	if *gantt {
		format = "?format=gantt"
	}
	c.printResult(sub.ID, format)
}

func (c *client) printResult(id, format string) {
	if format != "" {
		// The Gantt form is text; fetch and print it verbatim.
		resp, err := http.Get(c.base + "/v1/jobs/" + id + "/result" + format)
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode/100 != 2 {
			fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data))))
		}
		os.Stdout.Write(data)
		return
	}
	var res server.JobResult
	c.do(http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(res)
}

func (c *client) status(args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("status needs a job id"))
	}
	var st server.JobStatus
	c.do(http.MethodGet, "/v1/jobs/"+args[0], nil, &st)
	printJSON(st)
}

// watch streams the daemon's NDJSON progress feed to stdout until the job
// reaches a terminal state. A dropped connection is not fatal: the loop
// reconnects with the last seen sequence number as Last-Event-ID, so the
// resumed stream carries on with strictly newer snapshots (the store owns
// the counter) instead of the watch dying mid-solve.
func (c *client) watch(args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("watch needs a job id"))
	}
	if err := watchEvents(c.base, args[0], os.Stdout); err != nil {
		fatal(err)
	}
}

// watchEvents is the reconnecting stream loop behind `client watch`,
// factored out for tests. It returns nil once a terminal snapshot was
// printed, and an error when the job is unknown or the daemon stays
// unreachable across the retry budget.
func watchEvents(base, id string, out io.Writer) error {
	var lastSeq int64
	retries := 0
	for {
		before := lastSeq
		terminal, err := streamEventsOnce(base, id, &lastSeq, out)
		if terminal {
			return nil
		}
		if errors.Is(err, errJobGone) {
			// Unknown or evicted: reconnecting cannot bring the job back.
			return fmt.Errorf("watch %s: %w", id, err)
		}
		if lastSeq > before {
			// The connection made progress before dropping; only
			// consecutive fruitless reconnects count against the budget,
			// so a long watch survives any number of isolated drops.
			retries = 0
		}
		if err != nil && retries >= 5 {
			return fmt.Errorf("watch %s: giving up after %d reconnects: %w", id, retries, err)
		}
		retries++
		time.Sleep(time.Duration(retries) * 200 * time.Millisecond)
	}
}

// errJobGone marks a watch 404: the job is unknown or already evicted.
var errJobGone = errors.New("job not found")

// streamEventsOnce opens one /events connection (resuming past lastSeq),
// prints each line, and reports whether a terminal snapshot arrived.
func streamEventsOnce(base, id string, lastSeq *int64, out io.Writer) (bool, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(*lastSeq, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		msg := strings.TrimSpace(string(data))
		if resp.StatusCode == http.StatusNotFound {
			return false, fmt.Errorf("%w: %s", errJobGone, msg)
		}
		return false, fmt.Errorf("%s: %s", resp.Status, msg)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var st server.JobStatus
		if json.Unmarshal(line, &st) != nil {
			continue
		}
		if st.Seq > *lastSeq {
			*lastSeq = st.Seq
		}
		fmt.Fprintf(out, "%s\n", line)
		if st.State != server.StateQueued && st.State != server.StateRunning {
			return true, nil
		}
	}
	err = sc.Err()
	if err == nil {
		// The server closed the stream without a terminal snapshot —
		// shutdown mid-stream; reconnect like any other drop.
		err = io.ErrUnexpectedEOF
	}
	return false, err
}

func (c *client) result(args []string) {
	fs := flag.NewFlagSet("client result", flag.ExitOnError)
	gantt := fs.Bool("gantt", false, "fetch the text Gantt chart instead of JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("result needs a job id"))
	}
	format := ""
	if *gantt {
		format = "?format=gantt"
	}
	c.printResult(fs.Arg(0), format)
}

func (c *client) cancel(args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("cancel needs a job id"))
	}
	var st server.JobStatus
	c.do(http.MethodDelete, "/v1/jobs/"+args[0], nil, &st)
	printJSON(st)
}

func (c *client) list() {
	var jobs server.JobList
	c.do(http.MethodGet, "/v1/jobs", nil, &jobs)
	for _, st := range jobs.Jobs {
		fmt.Printf("%-10s %-10s %-24s expanded=%d", st.ID, st.State, strings.Join(st.Engines, ","), st.Progress.Expanded)
		if st.Length > 0 {
			fmt.Printf(" length=%d optimal=%v", st.Length, st.Optimal)
		}
		fmt.Println()
	}
}

func (c *client) engines() {
	var engines []server.EngineInfo
	c.do(http.MethodGet, "/v1/engines", nil, &engines)
	fmt.Printf("%-10s %-12s %s\n", "engine", "paper", "description")
	for _, e := range engines {
		fmt.Printf("%-10s %-12s %s\n", e.Name, e.Section, e.Description)
	}
}

func (c *client) health() {
	var h server.Health
	c.do(http.MethodGet, "/v1/healthz", nil, &h)
	printJSON(h)
}

// trace fetches a job's lifecycle trace and renders it as an ASCII
// timeline — every span as a bar on the job's shared time axis, remote
// worker and coordinator spans included — followed by the sampled search
// telemetry roll-up.
func (c *client) trace(args []string) {
	fs := flag.NewFlagSet("client trace", flag.ExitOnError)
	raw := fs.Bool("json", false, "print the raw JSON trace instead of the timeline")
	samples := fs.Bool("samples", false, "also print every retained telemetry sample")
	width := fs.Int("width", 60, "timeline bar width in columns")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("trace needs a job id"))
	}
	var tr server.TraceResponse
	c.do(http.MethodGet, "/v1/jobs/"+fs.Arg(0)+"/trace", nil, &tr)
	if *raw {
		printJSON(tr)
		return
	}
	printTrace(os.Stdout, tr, *width, *samples)
}

// metrics fetches the daemon's Prometheus exposition and pretty-prints it:
// histogram families as one count/sum/quantiles row per label set, plain
// counters and gauges aligned. -raw restores the verbatim scrape bytes. A
// non-200 scrape (or an unreachable daemon) exits non-zero.
func (c *client) metrics(args []string) {
	fs := flag.NewFlagSet("client metrics", flag.ExitOnError)
	raw := fs.Bool("raw", false, "print the text exposition verbatim (scraper bytes)")
	fs.Parse(args)
	resp, err := http.Get(c.base + "/metrics")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data))))
	}
	if *raw {
		os.Stdout.Write(data)
		return
	}
	printMetrics(os.Stdout, string(data))
}

// workers lists the cluster workers registered with a -cluster daemon.
func (c *client) workers() {
	var list cluster.WorkerList
	c.do(http.MethodGet, "/v1/workers", nil, &list)
	fmt.Printf("%-12s %-16s %8s %7s %9s %14s\n", "worker", "name", "capacity", "leased", "jobs done", "last seen")
	for _, w := range list.Workers {
		fmt.Printf("%-12s %-16s %8d %7d %9d %14s\n",
			w.ID, w.Name, w.Capacity, w.Leased, w.JobsDone, fmt.Sprintf("%dms ago", w.LastSeenMS))
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
