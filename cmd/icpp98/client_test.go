package main

// Tests for the client-side watch loop: the NDJSON stream dropping
// mid-solve must not kill the watch — it reconnects with Last-Event-ID
// and rides the resumed stream to the terminal snapshot.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
)

// droppingProxy forwards requests to a backend but cuts /events streams
// after cutLines lines on the first cutConns connections — a deterministic
// stand-in for a flaky network path.
type droppingProxy struct {
	backend  http.Handler
	cutLines int
	cutConns int32
	conns    atomic.Int32
}

func (p *droppingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasSuffix(r.URL.Path, "/events") {
		p.backend.ServeHTTP(w, r)
		return
	}
	n := p.conns.Add(1)
	if n > p.cutConns {
		p.backend.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	// Serve the backend stream into a pipe and forward only the first
	// cutLines lines, then hang up.
	pr, pw := io.Pipe()
	go func() {
		defer close(done)
		defer pw.Close()
		p.backend.ServeHTTP(&streamWriter{header: rec.Header(), w: pw}, r)
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	sc := bufio.NewScanner(pr)
	for i := 0; i < p.cutLines && sc.Scan(); i++ {
		w.Write(sc.Bytes())
		w.Write([]byte("\n"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	pr.CloseWithError(io.EOF) // detach the backend stream
	<-done
}

// streamWriter adapts an io.Writer into the ResponseWriter the backend
// streams into.
type streamWriter struct {
	header http.Header
	w      io.Writer
}

func (s *streamWriter) Header() http.Header         { return s.header }
func (s *streamWriter) WriteHeader(int)             {}
func (s *streamWriter) Write(b []byte) (int, error) { return s.w.Write(b) }
func (s *streamWriter) Flush()                      {}

// watchBlocker parks solves until cancelled so the watched job outlives
// several dropped stream connections.
type watchBlocker struct{}

func (watchBlocker) Name() string { return "watch-block" }

func (watchBlocker) Solve(ctx context.Context, m *core.Model, cfg engine.Config) (*core.Result, error) {
	<-ctx.Done()
	astar, err := engine.Lookup("astar")
	if err != nil {
		return nil, err
	}
	res, err := astar.Solve(context.Background(), m, engine.Config{})
	if err != nil {
		return nil, err
	}
	res.Optimal = false
	res.BoundFactor = 0
	return res, nil
}

func init() { engine.Register(watchBlocker{}) }

func TestWatchReconnectsAcrossDrop(t *testing.T) {
	srv := server.New(server.Config{StreamInterval: 5 * time.Millisecond})
	defer srv.Close()
	proxy := &droppingProxy{backend: srv, cutLines: 2, cutConns: 2}
	ts := httptest.NewServer(proxy)
	defer ts.Close()

	body := `{"graph_text": "graph app\nnode 0 2\nnode 1 3\nedge 0 1 1\n", "system": "ring:2", "engine": "watch-block"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub server.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Cancel the job once the watch has survived both cut connections and
	// is riding the third, direct one.
	go func() {
		for proxy.conns.Load() < 3 {
			time.Sleep(2 * time.Millisecond)
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
		if r, err := http.DefaultClient.Do(req); err == nil {
			r.Body.Close()
		}
	}()

	var out bytes.Buffer
	if err := watchEvents(ts.URL, sub.ID, &out); err != nil {
		t.Fatalf("watchEvents: %v (output so far:\n%s)", err, out.String())
	}
	if got := proxy.conns.Load(); got < 3 {
		t.Fatalf("proxy saw %d /events connections, want >= 3 (two drops + resume)", got)
	}

	// The printed lines carry strictly increasing sequence numbers and end
	// with the terminal snapshot.
	var prev int64
	var last server.JobStatus
	lines := 0
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var st server.JobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad output line %q: %v", sc.Text(), err)
		}
		if st.Seq <= prev {
			t.Fatalf("non-monotonic seq in watch output: %d after %d", st.Seq, prev)
		}
		prev = st.Seq
		last = st
		lines++
	}
	if lines < 4 {
		t.Fatalf("watch printed %d lines, want the cut segments plus the resume", lines)
	}
	if last.State != server.StateCancelled {
		t.Fatalf("terminal line = %+v, want the cancelled snapshot", last)
	}
}

// TestWatchUnknownJobFails: a watch on a job the store never held (or
// already evicted) surfaces the 404 instead of retrying forever.
func TestWatchUnknownJobFails(t *testing.T) {
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var out bytes.Buffer
	if err := watchEvents(ts.URL, "job-999", &out); err == nil {
		t.Fatal("watchEvents on an unknown job returned nil")
	}
}
