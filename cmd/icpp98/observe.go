package main

// The client's observability renderers: `client trace` turns a job's
// GET /v1/jobs/{id}/trace response into an ASCII timeline plus a
// telemetry roll-up, and `client metrics` pretty-prints the daemon's
// Prometheus exposition (histograms as count/sum/approximate quantiles,
// label families grouped) instead of dumping raw scrape text at a human.
// Both are factored over io.Writer for tests.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/server"
)

// printTrace renders one job's trace: a header, one bar per span on a
// shared time axis, and the sampled-search telemetry summary when the job
// ran a real solve (cache hits have none).
func printTrace(out io.Writer, tr server.TraceResponse, width int, withSamples bool) {
	fmt.Fprintf(out, "job %s  trace %s  state %s\n", tr.ID, tr.TraceID, tr.State)
	if len(tr.Spans) == 0 {
		fmt.Fprintln(out, "no spans recorded")
		return
	}
	if width < 10 {
		width = 10
	}
	minStart, maxEnd := tr.Spans[0].Start, tr.Spans[0].End
	nameW, originW := 0, 0
	for _, sp := range tr.Spans {
		if sp.Start < minStart {
			minStart = sp.Start
		}
		if sp.End > maxEnd {
			maxEnd = sp.End
		}
		nameW = max(nameW, len(sp.Name))
		originW = max(originW, len(sp.Origin))
	}
	total := maxEnd - minStart
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(out, "%d spans over %s\n", len(tr.Spans), fmtMS(float64(total)/1e6))
	if tr.DroppedSpans > 0 {
		fmt.Fprintf(out, "(%d spans dropped at the cap)\n", tr.DroppedSpans)
	}
	for _, sp := range tr.Spans {
		// Scale the span onto the axis; a sub-column span still gets one
		// visible cell so instantaneous stages don't vanish.
		lo := int(float64(sp.Start-minStart) / float64(total) * float64(width))
		hi := int(float64(sp.End-minStart) / float64(total) * float64(width))
		lo = min(lo, width-1)
		if hi <= lo {
			hi = lo + 1
		}
		hi = min(hi, width)
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
		fmt.Fprintf(out, "  %-*s %-*s [%s] %10s @%s%s\n",
			nameW, sp.Name, originW, sp.Origin, bar,
			fmtMS(sp.DurationMS), fmtMS(float64(sp.Start-minStart)/1e6), fmtAttrs(sp.Attrs))
	}
	if tr.Telemetry == nil {
		return
	}
	s := tr.Telemetry.Summary
	fmt.Fprintf(out, "telemetry: %d samples (%d retained), expanded %d, generated %d\n",
		tr.Telemetry.Total, len(tr.Telemetry.Samples), s.Expanded, s.Generated)
	fmt.Fprintf(out, "  rate peak %.0f/s final %.0f/s", s.PeakRate, s.FinalRate)
	if s.FinalIncumbent > 0 || s.FinalBestF > 0 {
		fmt.Fprintf(out, ", incumbent %d, best f %d", s.FinalIncumbent, s.FinalBestF)
	}
	if s.PeakOpen > 0 {
		fmt.Fprintf(out, ", peak open %d", s.PeakOpen)
	}
	fmt.Fprintln(out)
	if !withSamples {
		return
	}
	fmt.Fprintf(out, "  %9s %12s %12s %12s %10s %8s %10s\n",
		"offset", "expanded", "generated", "exp/s", "incumbent", "best f", "open")
	for _, sm := range tr.Telemetry.Samples {
		fmt.Fprintf(out, "  %7dms %12d %12d %12.0f %10d %8d %10d\n",
			sm.OffsetMS, sm.Expanded, sm.Generated, sm.ExpandedPerSec,
			sm.Incumbent, sm.BestF, sm.OpenLen)
	}
}

// fmtMS renders a millisecond quantity at a human scale.
func fmtMS(ms float64) string {
	switch {
	case ms >= 10000:
		return fmt.Sprintf("%.1fs", ms/1000)
	case ms >= 100:
		return fmt.Sprintf("%.0fms", ms)
	default:
		return fmt.Sprintf("%.2fms", ms)
	}
}

func fmtAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, attrs[k])
	}
	return b.String()
}

// metricSample is one parsed exposition line: a metric name, its raw
// label block (sans the le bucket label for histogram grouping), and the
// value.
type metricSample struct {
	name   string
	labels string // canonical `k="v",...` block, "" when unlabelled
	le     string // the le label of a _bucket line, "" otherwise
	value  float64
}

// metricFamily is one exposition family: the HELP/TYPE header plus its
// samples in scrape order.
type metricFamily struct {
	name    string
	help    string
	typ     string
	samples []metricSample
}

// parseExposition splits a Prometheus 0.0.4 text page into families in
// page order. It is a renderer's parser — tolerant, dropping lines it
// cannot read — not a validator; internal/bench carries the strict linter.
func parseExposition(text string) []metricFamily {
	byName := map[string]*metricFamily{}
	var order []*metricFamily
	family := func(name string) *metricFamily {
		if f := byName[name]; f != nil {
			return f
		}
		f := &metricFamily{name: name}
		byName[name] = f
		order = append(order, f)
		return f
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			if name, rest, ok := strings.Cut(strings.TrimPrefix(line, "# HELP "), " "); ok {
				family(name).help = rest
			}
		case strings.HasPrefix(line, "# TYPE "):
			if name, rest, ok := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " "); ok {
				family(name).typ = rest
			}
		case strings.HasPrefix(line, "#"):
		default:
			s, ok := parseSampleLine(line)
			if !ok {
				continue
			}
			// _bucket/_sum/_count samples belong to the histogram family
			// whose TYPE header named the bare metric.
			base := s.name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				trimmed := strings.TrimSuffix(s.name, suffix)
				if trimmed != s.name && byName[trimmed] != nil && byName[trimmed].typ == "histogram" {
					base = trimmed
					break
				}
			}
			family(base).samples = append(family(base).samples, s)
		}
	}
	out := make([]metricFamily, len(order))
	for i, f := range order {
		out[i] = *f
	}
	return out
}

// parseSampleLine reads `name{k="v",...} value`, splitting the le label
// out of the block so histogram buckets group by their remaining labels.
func parseSampleLine(line string) (metricSample, bool) {
	var s metricSample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, false
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, false
		}
		var kept []string
		for _, pair := range splitLabels(rest[1:end]) {
			if v, ok := strings.CutPrefix(pair, "le="); ok {
				s.le = strings.Trim(v, `"`)
				continue
			}
			kept = append(kept, pair)
		}
		s.labels = strings.Join(kept, ",")
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, false
	}
	s.value = v
	return s, true
}

// splitLabels splits a label block on commas outside quoted values.
func splitLabels(block string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(block); i++ {
		c := block[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(block):
			b.WriteByte(c)
			i++
			b.WriteByte(block[i])
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}

// printMetrics renders a parsed exposition: plain counters and gauges as
// aligned name/value lines, histograms as one row per label set with the
// count, sum, mean, and quantiles interpolated from the buckets.
func printMetrics(out io.Writer, text string) {
	families := parseExposition(text)
	for _, f := range families {
		if f.typ != "histogram" {
			for _, s := range f.samples {
				label := s.name
				if s.labels != "" {
					label += "{" + s.labels + "}"
				}
				fmt.Fprintf(out, "%-58s %s\n", label, fmtValue(s.value))
			}
			continue
		}
		printHistogram(out, f)
	}
}

// histSeries is the bucket/sum/count triple of one label set.
type histSeries struct {
	labels string
	bounds []float64 // upper bounds in page order, +Inf last
	cums   []float64 // cumulative counts per bound
	sum    float64
	count  float64
}

func printHistogram(out io.Writer, f metricFamily) {
	byLabels := map[string]*histSeries{}
	var order []*histSeries
	series := func(labels string) *histSeries {
		if h := byLabels[labels]; h != nil {
			return h
		}
		h := &histSeries{labels: labels}
		byLabels[labels] = h
		order = append(order, h)
		return h
	}
	for _, s := range f.samples {
		h := series(s.labels)
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			bound := parseBound(s.le)
			h.bounds = append(h.bounds, bound)
			h.cums = append(h.cums, s.value)
		case strings.HasSuffix(s.name, "_sum"):
			h.sum = s.value
		case strings.HasSuffix(s.name, "_count"):
			h.count = s.value
		}
	}
	for _, h := range order {
		label := f.name
		if h.labels != "" {
			label += "{" + h.labels + "}"
		}
		if h.count == 0 {
			fmt.Fprintf(out, "%-58s count=0\n", label)
			continue
		}
		fmt.Fprintf(out, "%-58s count=%.0f sum=%s mean=%s p50~%s p90~%s p99~%s\n",
			label, h.count, fmtSeconds(h.sum), fmtSeconds(h.sum/h.count),
			fmtSeconds(h.quantile(0.50)), fmtSeconds(h.quantile(0.90)), fmtSeconds(h.quantile(0.99)))
	}
}

// quantile linearly interpolates q within the first bucket whose
// cumulative count reaches q*count; an answer in the +Inf bucket clamps
// to the last finite bound (the histogram cannot resolve beyond it).
func (h *histSeries) quantile(q float64) float64 {
	target := q * h.count
	prevBound, prevCum := 0.0, 0.0
	for i, cum := range h.cums {
		if cum >= target {
			bound := h.bounds[i]
			if bound > 1e300 { // the +Inf bucket
				return prevBound
			}
			if cum == prevCum {
				return bound
			}
			return prevBound + (bound-prevBound)*(target-prevCum)/(cum-prevCum)
		}
		prevBound, prevCum = h.bounds[i], cum
	}
	return prevBound
}

func parseBound(le string) float64 {
	if le == "+Inf" {
		return 1e308
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 1e308
	}
	return v
}

// fmtValue renders a counter/gauge value without trailing float noise.
func fmtValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// fmtSeconds renders a seconds quantity at a human scale.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 0.001:
		return fmt.Sprintf("%.1fms", s*1000)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
