package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/stg"
)

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestScheduleCLILargeSTG is the new-size-regime acceptance at the CLI: a
// v = 128 layered STG instance (beyond the old 64-task mask) scheduled with
// `icpp98 schedule -engine astar -hplus -procs complete:8` reaches proven
// optimality.
func TestScheduleCLILargeSTG(t *testing.T) {
	g, err := gen.Layered(gen.LayeredConfig{Layers: 32, Width: 4, Seed: 42}) // v = 128
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stg.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "large.stg")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		cmdSchedule([]string{"-engine", "astar", "-hplus", "-procs", "complete:8", "-gantt=false", path})
	})
	if !strings.Contains(out, "optimal=true") {
		t.Fatalf("CLI did not prove optimality on the v=128 instance:\n%s", out)
	}
	if !strings.Contains(out, "algorithm=astar") {
		t.Fatalf("unexpected CLI header:\n%s", out)
	}
}
