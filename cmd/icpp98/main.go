// Command icpp98 schedules task-graph files with the algorithms of the
// paper and inspects graphs and schedules:
//
//	icpp98 gen -v 20 -ccr 1.0 -seed 7 > g.tg        # emit a §4.1 random DAG
//	icpp98 analyze g.tg                             # levels, CP, CCR
//	icpp98 schedule -algo astar -procs ring:3 g.tg  # optimal schedule + Gantt
//	icpp98 schedule -algo aeps -eps 0.2 g.tg        # bounded-suboptimal
//	icpp98 schedule -algo parallel -ppes 4 g.tg     # parallel A*
//	icpp98 schedule -algo list g.tg                 # list-scheduling heuristic
//	icpp98 schedule -algo dfbb g.tg                 # depth-first B&B (low memory)
//	icpp98 schedule -algo bnb g.tg                  # Chen & Yu baseline
//	icpp98 example                                  # the paper's Figure 1 demo
//	icpp98 tree -ppes 2 g.tg                        # Figure 3/5 search tree
//	icpp98 heuristics g.tg                          # heuristic-vs-optimal study
//	icpp98 dot g.tg                                 # Graphviz export
//	icpp98 convert -to stg g.tg > g.stg             # Standard Task Graph export
//
// Graph files use the text format of internal/taskgraph (graph/node/edge
// lines); files ending in .stg are read as Standard Task Graph instances.
// The -procs flag accepts complete:N, ring:N, chain:N, star:N, mesh:RxC,
// hypercube:D (default complete:V).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bnb"
	"repro/internal/core"
	"repro/internal/dfbb"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/parallel"
	"repro/internal/procgraph"
	"repro/internal/schedule"
	"repro/internal/stg"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "analyze":
		cmdAnalyze(os.Args[2:])
	case "schedule":
		cmdSchedule(os.Args[2:])
	case "example":
		cmdExample()
	case "tree":
		cmdTree(os.Args[2:])
	case "heuristics":
		cmdHeuristics(os.Args[2:])
	case "dot":
		cmdDot(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: icpp98 <gen|analyze|schedule|example|tree|heuristics|dot|convert> [flags] [file]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icpp98:", err)
	os.Exit(1)
}

func loadGraph(args []string) *taskgraph.Graph {
	var r *os.File
	isSTG := false
	if len(args) == 0 || args[0] == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(args[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
		isSTG = strings.HasSuffix(args[0], ".stg")
	}
	var g *taskgraph.Graph
	var err error
	if isSTG {
		g, err = stg.Read(r, stg.ImportOptions{})
	} else {
		g, err = taskgraph.Parse(r)
	}
	if err != nil {
		fatal(err)
	}
	return g
}

func parseSystem(spec string, v int) *procgraph.System {
	if spec == "" {
		return procgraph.Complete(v)
	}
	name, arg, _ := strings.Cut(spec, ":")
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad processor spec %q", spec))
		}
		return n
	}
	switch name {
	case "complete":
		return procgraph.Complete(atoi(arg))
	case "ring":
		return procgraph.Ring(atoi(arg))
	case "chain":
		return procgraph.Chain(atoi(arg))
	case "star":
		return procgraph.Star(atoi(arg))
	case "hypercube":
		return procgraph.Hypercube(atoi(arg))
	case "mesh":
		r, c, ok := strings.Cut(arg, "x")
		if !ok {
			fatal(fmt.Errorf("mesh spec must be mesh:RxC, got %q", spec))
		}
		return procgraph.Mesh(atoi(r), atoi(c))
	default:
		fatal(fmt.Errorf("unknown topology %q", name))
		return nil
	}
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	v := fs.Int("v", 20, "number of tasks")
	ccr := fs.Float64("ccr", 1.0, "communication-to-computation ratio")
	seed := fs.Uint64("seed", 1, "random seed")
	kind := fs.String("kind", "random", "random | gauss | fft | forkjoin | wavefront")
	fs.Parse(args)

	var g *taskgraph.Graph
	var err error
	switch *kind {
	case "random":
		g, err = gen.Random(gen.RandomConfig{V: *v, CCR: *ccr, Seed: *seed})
	case "gauss":
		g, err = gen.GaussianElimination(*v, 40, int32(40**ccr))
	case "fft":
		g, err = gen.FFT(*v, 40, int32(40**ccr))
	case "forkjoin":
		g, err = gen.ForkJoin(*v, 3, 40, int32(40**ccr))
	case "wavefront":
		g, err = gen.Wavefront(*v, 40, int32(40**ccr))
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}
	if err := taskgraph.Format(os.Stdout, g); err != nil {
		fatal(err)
	}
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	fs.Parse(args)
	g := loadGraph(fs.Args())
	tl := g.TLevels()
	bl := g.BLevels()
	sl := g.StaticLevels()
	fmt.Println(g)
	fmt.Printf("%-10s %8s %8s %8s %8s\n", "node", "weight", "sl", "b-level", "t-level")
	for n := int32(0); int(n) < g.NumNodes(); n++ {
		fmt.Printf("%-10s %8d %8d %8d %8d\n", g.Label(n), g.Weight(n), sl[n], bl[n], tl[n])
	}
	cp, path := g.CriticalPath()
	labels := make([]string, len(path))
	for i, n := range path {
		labels[i] = g.Label(n)
	}
	fmt.Printf("critical path: length=%d via %s\n", cp, strings.Join(labels, " -> "))
}

func cmdSchedule(args []string) {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	algo := fs.String("algo", "astar", "astar | aeps | parallel | dfbb | ida | list | etf | mcp | dls | bnb")
	procs := fs.String("procs", "", "target system, e.g. complete:8, ring:3, mesh:2x4 (default complete:V)")
	eps := fs.Float64("eps", 0.2, "ε for -algo aeps")
	ppesN := fs.Int("ppes", 4, "PPEs for -algo parallel")
	budget := fs.Int64("budget", 0, "expansion budget (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none)")
	noPrune := fs.Bool("no-pruning", false, "disable the §3.2 prunings")
	gantt := fs.Bool("gantt", true, "print the Gantt chart")
	fs.Parse(args)
	g := loadGraph(fs.Args())
	sys := parseSystem(*procs, g.NumNodes())

	var deadline time.Time
	if *timeout > 0 {
		deadline = time.Now().Add(*timeout)
	}
	var disable core.Disable
	if *noPrune {
		disable = core.DisableAllPruning
	}

	started := time.Now()
	var s *schedule.Schedule
	var optimal bool
	var stats core.Stats
	switch *algo {
	case "astar", "aeps":
		e := 0.0
		if *algo == "aeps" {
			e = *eps
		}
		res, err := core.Solve(g, sys, core.Options{
			Epsilon: e, Disable: disable, MaxExpanded: *budget, Deadline: deadline,
		})
		if err != nil {
			fatal(err)
		}
		s, optimal, stats = res.Schedule, res.Optimal, res.Stats
	case "parallel":
		res, err := parallel.Solve(g, sys, parallel.Options{
			PPEs: *ppesN, Disable: disable, MaxExpanded: *budget, Deadline: deadline,
		})
		if err != nil {
			fatal(err)
		}
		s, optimal, stats = res.Schedule, res.Optimal, res.Stats
	case "dfbb", "ida":
		solve := dfbb.Solve
		if *algo == "ida" {
			solve = dfbb.SolveIDA
		}
		res, err := solve(g, sys, dfbb.Options{
			Disable: disable, MaxExpanded: *budget, Deadline: deadline,
		})
		if err != nil {
			fatal(err)
		}
		s, optimal, stats = res.Schedule, res.Optimal, res.Stats
	case "list":
		ls, err := listsched.Schedule(g, sys, listsched.Options{Priority: listsched.PriorityBLevel})
		if err != nil {
			fatal(err)
		}
		s = ls
	case "etf":
		ls, err := listsched.ETF(g, sys)
		if err != nil {
			fatal(err)
		}
		s = ls
	case "mcp":
		ls, err := listsched.MCP(g, sys)
		if err != nil {
			fatal(err)
		}
		s = ls
	case "dls":
		ls, err := listsched.DLS(g, sys)
		if err != nil {
			fatal(err)
		}
		s = ls
	case "bnb":
		res, err := bnb.Solve(g, sys, bnb.Options{MaxExpanded: *budget, Deadline: deadline})
		if err != nil {
			fatal(err)
		}
		s, optimal, stats = res.Schedule, res.Optimal, res.Stats
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	elapsed := time.Since(started)

	if err := s.Validate(); err != nil {
		fatal(fmt.Errorf("produced an invalid schedule (bug): %w", err))
	}
	fmt.Printf("algorithm=%s system=%s length=%d optimal=%v time=%v\n",
		*algo, sys.Name(), s.Length, optimal, elapsed.Round(time.Microsecond))
	if stats.Expanded > 0 {
		fmt.Printf("states: expanded=%d generated=%d duplicates=%d max-open=%d\n",
			stats.Expanded, stats.Generated, stats.Duplicates, stats.MaxOpen)
	}
	fmt.Println()
	fmt.Print(s.Table())
	if *gantt {
		fmt.Println()
		fmt.Print(s.Gantt(8))
	}
}

func cmdExample() {
	g := gen.PaperExample()
	sys := procgraph.Ring(3)
	fmt.Println("Kwok & Ahmad ICPP'98, Figure 1: 6-task DAG on a 3-processor ring")
	fmt.Println()
	res, err := core.Solve(g, sys, core.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("optimal schedule length = %d (paper's Figure 4: 14)\n", res.Length)
	fmt.Printf("states: expanded=%d generated=%d\n\n", res.Stats.Expanded, res.Stats.Generated)
	fmt.Print(res.Schedule.Gantt(8))
}

func cmdDot(args []string) {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	fs.Parse(args)
	g := loadGraph(fs.Args())
	if err := taskgraph.WriteDOT(os.Stdout, g); err != nil {
		fatal(err)
	}
}

// cmdTree records the search of a graph (the worked example by default)
// and draws the Figure 3-style tree (Figure 5-style when -ppes > 1).
func cmdTree(args []string) {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	procs := fs.String("procs", "", "target system (default ring:3, matching Figure 1)")
	ppes := fs.Int("ppes", 1, "PPE count; > 1 records a parallel search (Figure 5)")
	dot := fs.Bool("dot", false, "emit Graphviz instead of ASCII")
	eps := fs.Float64("eps", 0, "ε > 0 traces the Aε* search instead")
	fs.Parse(args)

	var g *taskgraph.Graph
	if fs.NArg() == 0 {
		g = gen.PaperExample()
	} else {
		g = loadGraph(fs.Args())
	}
	spec := *procs
	if spec == "" {
		spec = "ring:3"
	}
	sys := parseSystem(spec, g.NumNodes())
	rec := trace.NewRecorder(g)

	var length int32
	var optimal bool
	if *ppes > 1 {
		res, err := parallel.Solve(g, sys, parallel.Options{
			PPEs: *ppes, Epsilon: *eps, TracerFor: rec.ForPPE,
		})
		if err != nil {
			fatal(err)
		}
		length, optimal = res.Length, res.Optimal
	} else {
		res, err := core.Solve(g, sys, core.Options{Epsilon: *eps, Tracer: rec})
		if err != nil {
			fatal(err)
		}
		length, optimal = res.Length, res.Optimal
	}

	if *dot {
		if err := rec.WriteDOT(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("search tree for %q on %s: %d states generated, %d expanded, length %d (optimal=%v)\n\n",
		g.Name(), sys.Name(), rec.GeneratedCount(), rec.ExpandedCount(), length, optimal)
	if err := rec.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

// cmdHeuristics runs every list-scheduling heuristic against the optimal
// A* schedule — the study the paper's introduction motivates ("optimal
// solutions ... can serve as a reference to assess the performance of
// various scheduling heuristics").
func cmdHeuristics(args []string) {
	fs := flag.NewFlagSet("heuristics", flag.ExitOnError)
	procs := fs.String("procs", "", "target system (default complete:V)")
	budget := fs.Int64("budget", 2_000_000, "optimal-search expansion budget")
	fs.Parse(args)
	g := loadGraph(fs.Args())
	sys := parseSystem(*procs, g.NumNodes())

	res, err := core.Solve(g, sys, core.Options{MaxExpanded: *budget})
	if err != nil {
		fatal(err)
	}
	ref := "optimal"
	if !res.Optimal {
		ref = "best-found (budget hit; deviations are upper bounds)"
	}
	fmt.Printf("reference: A* length %d (%s)\n\n", res.Length, ref)
	fmt.Printf("%-24s %8s %10s\n", "heuristic", "length", "deviation")
	for _, alg := range listsched.All() {
		s, err := alg.Run(g, sys)
		if err != nil {
			fatal(err)
		}
		dev := 100 * (float64(s.Length) - float64(res.Length)) / float64(res.Length)
		fmt.Printf("%-24s %8d %9.1f%%\n", alg.Name, s.Length, dev)
	}
}

// cmdConvert rewrites a graph file between the native text format and STG.
func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "stg", "target format: stg | tg")
	edgeCost := fs.Int("edgecost", 0, "uniform edge cost to attach when importing STG")
	fs.Parse(args)
	g := loadGraphWithSTGCost(fs.Args(), int32(*edgeCost))
	switch *to {
	case "stg":
		if err := stg.Write(os.Stdout, g); err != nil {
			fatal(err)
		}
	case "tg":
		if err := taskgraph.Format(os.Stdout, g); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *to))
	}
}

func loadGraphWithSTGCost(args []string, edgeCost int32) *taskgraph.Graph {
	if len(args) > 0 && strings.HasSuffix(args[0], ".stg") && edgeCost > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		g, err := stg.Read(f, stg.ImportOptions{EdgeCost: edgeCost})
		if err != nil {
			fatal(err)
		}
		return g
	}
	return loadGraph(args)
}
