// Command icpp98 schedules task-graph files with the algorithms of the
// paper and inspects graphs and schedules:
//
//	icpp98 gen -v 20 -ccr 1.0 -seed 7 > g.tg        # emit a §4.1 random DAG
//	icpp98 analyze g.tg                             # levels, CP, CCR
//	icpp98 engines                                  # list the engine registry
//	icpp98 schedule -engine astar -procs ring:3 g.tg # optimal schedule + Gantt
//	icpp98 schedule -engine aeps -eps 0.2 g.tg      # bounded-suboptimal
//	icpp98 schedule -engine parallel -ppes 4 g.tg   # parallel A* (Paragon model)
//	icpp98 schedule -engine native -workers 4 g.tg  # multi-core work-stealing A*
//	icpp98 schedule -engine dfbb g.tg               # depth-first B&B (low memory)
//	icpp98 schedule -engine bnb g.tg                # Chen & Yu baseline
//	icpp98 schedule -engine astar,dfbb,bnb g.tg     # portfolio race of engines
//	icpp98 schedule -hplus -procs complete:8 big.stg # large graphs (v > 64): tighter heuristic
//	icpp98 schedule -algo list g.tg                 # list-scheduling heuristic
//	icpp98 example                                  # the paper's Figure 1 demo
//	icpp98 tree -ppes 2 g.tg                        # Figure 3/5 search tree
//	icpp98 heuristics g.tg                          # heuristic-vs-optimal study
//	icpp98 dot g.tg                                 # Graphviz export
//	icpp98 convert -to stg g.tg > g.stg             # Standard Task Graph export
//	icpp98 client submit -wait g.tg                 # solve on an icpp98d daemon
//
// -engine selects any engine registered in internal/engine (a comma list
// races them as a portfolio and reports the winner); -algo remains for the
// polynomial-time list heuristics (list, etf, mcp, dls) and as a shorthand
// for engine names. Graph files use the text format of internal/taskgraph
// (graph/node/edge lines); files ending in .stg are read as Standard Task
// Graph instances. The -procs flag accepts complete:N, ring:N, chain:N,
// star:N, mesh:RxC, torus:RxC, hypercube:D (default complete:V).
//
// The client subcommand (see client.go) submits, watches, and cancels jobs
// on a running icpp98d network daemon instead of solving in-process.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/procgraph"
	"repro/internal/schedule"
	"repro/internal/solverpool"
	"repro/internal/stg"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "analyze":
		cmdAnalyze(os.Args[2:])
	case "schedule":
		cmdSchedule(os.Args[2:])
	case "engines":
		cmdEngines()
	case "example":
		cmdExample()
	case "tree":
		cmdTree(os.Args[2:])
	case "heuristics":
		cmdHeuristics(os.Args[2:])
	case "dot":
		cmdDot(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	case "client":
		cmdClient(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: icpp98 <gen|analyze|engines|schedule|example|tree|heuristics|dot|convert|client> [flags] [file]")
	os.Exit(2)
}

// cmdEngines prints the engine registry: every name -engine accepts.
func cmdEngines() {
	fmt.Printf("%-10s %-12s %s\n", "engine", "paper", "description")
	for _, e := range engine.All() {
		section, desc := engine.Describe(e)
		fmt.Printf("%-10s %-12s %s\n", e.Name(), section, desc)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icpp98:", err)
	os.Exit(1)
}

func loadGraph(args []string) *taskgraph.Graph {
	var r *os.File
	isSTG := false
	if len(args) == 0 || args[0] == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(args[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
		isSTG = strings.HasSuffix(args[0], ".stg")
	}
	var g *taskgraph.Graph
	var err error
	if isSTG {
		g, err = stg.Read(r, stg.ImportOptions{})
	} else {
		g, err = taskgraph.Parse(r)
	}
	if err != nil {
		fatal(err)
	}
	return g
}

// parseSystem resolves a -procs spec through the shared parser the daemon's
// submit endpoint also uses (procgraph.ParseSpec).
func parseSystem(spec string, v int) *procgraph.System {
	sys, err := procgraph.ParseSpec(spec, v)
	if err != nil {
		fatal(err)
	}
	return sys
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	v := fs.Int("v", 20, "number of tasks")
	ccr := fs.Float64("ccr", 1.0, "communication-to-computation ratio")
	seed := fs.Uint64("seed", 1, "random seed")
	kind := fs.String("kind", "random", "random | gauss | fft | forkjoin | wavefront")
	fs.Parse(args)

	var g *taskgraph.Graph
	var err error
	switch *kind {
	case "random":
		g, err = gen.Random(gen.RandomConfig{V: *v, CCR: *ccr, Seed: *seed})
	case "gauss":
		g, err = gen.GaussianElimination(*v, 40, int32(40**ccr))
	case "fft":
		g, err = gen.FFT(*v, 40, int32(40**ccr))
	case "forkjoin":
		g, err = gen.ForkJoin(*v, 3, 40, int32(40**ccr))
	case "wavefront":
		g, err = gen.Wavefront(*v, 40, int32(40**ccr))
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}
	if err := taskgraph.Format(os.Stdout, g); err != nil {
		fatal(err)
	}
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	fs.Parse(args)
	g := loadGraph(fs.Args())
	tl := g.TLevels()
	bl := g.BLevels()
	sl := g.StaticLevels()
	fmt.Println(g)
	fmt.Printf("%-10s %8s %8s %8s %8s\n", "node", "weight", "sl", "b-level", "t-level")
	for n := int32(0); int(n) < g.NumNodes(); n++ {
		fmt.Printf("%-10s %8d %8d %8d %8d\n", g.Label(n), g.Weight(n), sl[n], bl[n], tl[n])
	}
	cp, path := g.CriticalPath()
	labels := make([]string, len(path))
	for i, n := range path {
		labels[i] = g.Label(n)
	}
	fmt.Printf("critical path: length=%d via %s\n", cp, strings.Join(labels, " -> "))
}

func cmdSchedule(args []string) {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	engines := strings.Join(engine.Names(), " | ")
	engName := fs.String("engine", "", "registry engine: "+engines+"; a comma list races them as a portfolio")
	algo := fs.String("algo", "", "heuristic (list | etf | mcp | dls) or an engine-name shorthand; default astar")
	procs := fs.String("procs", "", "target system, e.g. complete:8, ring:3, mesh:2x4 (default complete:V)")
	eps := fs.Float64("eps", 0.2, "ε for the aeps engine")
	ppesN := fs.Int("ppes", 4, "PPEs for the parallel engine")
	workersN := fs.Int("workers", 0, "workers for the native engine (0 = one per core)")
	budget := fs.Int64("budget", 0, "expansion budget (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none)")
	noPrune := fs.Bool("no-pruning", false, "disable the §3.2 prunings")
	hplus := fs.Bool("hplus", false, "use the strengthened admissible heuristic (recommended for v > 64)")
	hfunc := fs.String("hfunc", "", "heuristic tier: paper | plus | load (overrides -hplus)")
	disableList := fs.String("disable", "", "comma list of prunings to switch off: iso | equivalence | equivalent-tasks | fto | upper-bound | priority-order | duplicate-check | all")
	gantt := fs.Bool("gantt", true, "print the Gantt chart")
	fs.Parse(args)
	g := loadGraph(fs.Args())
	sys := parseSystem(*procs, g.NumNodes())

	var disable core.Disable
	if *noPrune {
		disable = core.DisableAllPruning
	}
	for _, name := range strings.Split(*disableList, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		d, ok := core.DisableByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown pruning name %q in -disable", name))
		}
		disable |= d
	}
	cfg := engine.Config{
		Disable:     disable,
		MaxExpanded: *budget,
		Timeout:     *timeout,
		PPEs:        *ppesN,
		Workers:     *workersN,
	}
	if *hplus {
		cfg.HFunc = core.HPlus
	}
	if *hfunc != "" {
		h, ok := core.HFuncByName(*hfunc)
		if !ok {
			fatal(fmt.Errorf("unknown heuristic tier %q in -hfunc", *hfunc))
		}
		cfg.HFunc = h
	}

	// Resolve what to run: -engine wins; -algo keeps the heuristics and
	// doubles as an engine-name shorthand; the default is the serial A*.
	selected := *engName
	if selected == "" {
		selected = *algo
	}
	if selected == "" {
		selected = "astar"
	}

	started := time.Now()
	var s *schedule.Schedule
	var optimal bool
	var stats core.Stats
	label := selected
	switch selected {
	case "list", "etf", "mcp", "dls":
		var ls *schedule.Schedule
		var err error
		switch selected {
		case "list":
			ls, err = listsched.Schedule(g, sys, listsched.Options{Priority: listsched.PriorityBLevel})
		case "etf":
			ls, err = listsched.ETF(g, sys)
		case "mcp":
			ls, err = listsched.MCP(g, sys)
		case "dls":
			ls, err = listsched.DLS(g, sys)
		}
		if err != nil {
			fatal(err)
		}
		s = ls
	default:
		var names []string
		for _, name := range strings.Split(selected, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			fatal(fmt.Errorf("no engine named in %q", selected))
		}
		epsSet := false
		fs.Visit(func(f *flag.Flag) { epsSet = epsSet || f.Name == "eps" })
		if len(names) == 1 && names[0] == "aeps" {
			cfg.Epsilon = *eps
		} else if epsSet {
			// Portfolio: an explicit -eps applies to the ε-capable entrants
			// (aeps, parallel); without it the exact entrants stay exact and
			// aeps uses its internal default.
			cfg.Epsilon = *eps
		}
		if len(names) > 1 {
			// Portfolio: race the named engines, report the winner and how
			// far the cancelled losers got.
			pf, err := solverpool.New(len(names)).SolvePortfolio(context.Background(), g, sys, names, cfg)
			if err != nil {
				fatal(err)
			}
			s, optimal, stats = pf.Result.Schedule, pf.Result.Optimal, pf.Result.Stats
			label = "portfolio:" + pf.Winner
			for name, lose := range pf.Losers {
				fmt.Printf("loser %-9s stopped after %d expansions (optimal=%v)\n",
					name, lose.Stats.Expanded, lose.Optimal)
			}
			for name, err := range pf.Errs {
				fmt.Printf("loser %-9s failed: %v\n", name, err)
			}
		} else {
			label = names[0]
			res, err := engine.Solve(context.Background(), names[0], g, sys, cfg)
			if err != nil {
				fatal(err)
			}
			s, optimal, stats = res.Schedule, res.Optimal, res.Stats
		}
	}
	elapsed := time.Since(started)

	if err := s.Validate(); err != nil {
		fatal(fmt.Errorf("produced an invalid schedule (bug): %w", err))
	}
	fmt.Printf("algorithm=%s system=%s length=%d optimal=%v time=%v\n",
		label, sys.Name(), s.Length, optimal, elapsed.Round(time.Microsecond))
	if stats.Expanded > 0 {
		fmt.Printf("states: expanded=%d generated=%d duplicates=%d max-open=%d\n",
			stats.Expanded, stats.Generated, stats.Duplicates, stats.MaxOpen)
	}
	if stats.PrunedEquiv > 0 || stats.PrunedFTO > 0 {
		fmt.Printf("pruned: equiv=%d fto=%d\n", stats.PrunedEquiv, stats.PrunedFTO)
	}
	fmt.Println()
	fmt.Print(s.Table())
	if *gantt {
		fmt.Println()
		fmt.Print(s.Gantt(8))
	}
}

func cmdExample() {
	g := gen.PaperExample()
	sys := procgraph.Ring(3)
	fmt.Println("Kwok & Ahmad ICPP'98, Figure 1: 6-task DAG on a 3-processor ring")
	fmt.Println()
	res, err := engine.Solve(context.Background(), "astar", g, sys, engine.Config{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("optimal schedule length = %d (paper's Figure 4: 14)\n", res.Length)
	fmt.Printf("states: expanded=%d generated=%d\n\n", res.Stats.Expanded, res.Stats.Generated)
	fmt.Print(res.Schedule.Gantt(8))
}

func cmdDot(args []string) {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	fs.Parse(args)
	g := loadGraph(fs.Args())
	if err := taskgraph.WriteDOT(os.Stdout, g); err != nil {
		fatal(err)
	}
}

// cmdTree records the search of a graph (the worked example by default)
// and draws the Figure 3-style tree (Figure 5-style when -ppes > 1).
func cmdTree(args []string) {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	procs := fs.String("procs", "", "target system (default ring:3, matching Figure 1)")
	ppes := fs.Int("ppes", 1, "PPE count; > 1 records a parallel search (Figure 5)")
	dot := fs.Bool("dot", false, "emit Graphviz instead of ASCII")
	eps := fs.Float64("eps", 0, "ε > 0 traces the Aε* search instead")
	fs.Parse(args)

	var g *taskgraph.Graph
	if fs.NArg() == 0 {
		g = gen.PaperExample()
	} else {
		g = loadGraph(fs.Args())
	}
	spec := *procs
	if spec == "" {
		spec = "ring:3"
	}
	sys := parseSystem(spec, g.NumNodes())
	rec := trace.NewRecorder(g)

	var length int32
	var optimal bool
	if *ppes > 1 {
		res, err := engine.Solve(context.Background(), "parallel", g, sys, engine.Config{
			PPEs: *ppes, Epsilon: *eps, TracerFor: rec.ForPPE,
		})
		if err != nil {
			fatal(err)
		}
		length, optimal = res.Length, res.Optimal
	} else {
		name := "astar"
		if *eps > 0 {
			name = "aeps"
		}
		res, err := engine.Solve(context.Background(), name, g, sys, engine.Config{Epsilon: *eps, Tracer: rec})
		if err != nil {
			fatal(err)
		}
		length, optimal = res.Length, res.Optimal
	}

	if *dot {
		if err := rec.WriteDOT(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("search tree for %q on %s: %d states generated, %d expanded, length %d (optimal=%v)\n\n",
		g.Name(), sys.Name(), rec.GeneratedCount(), rec.ExpandedCount(), length, optimal)
	if err := rec.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

// cmdHeuristics runs every list-scheduling heuristic against the optimal
// A* schedule — the study the paper's introduction motivates ("optimal
// solutions ... can serve as a reference to assess the performance of
// various scheduling heuristics").
func cmdHeuristics(args []string) {
	fs := flag.NewFlagSet("heuristics", flag.ExitOnError)
	procs := fs.String("procs", "", "target system (default complete:V)")
	budget := fs.Int64("budget", 2_000_000, "optimal-search expansion budget")
	fs.Parse(args)
	g := loadGraph(fs.Args())
	sys := parseSystem(*procs, g.NumNodes())

	res, err := engine.Solve(context.Background(), "astar", g, sys, engine.Config{MaxExpanded: *budget})
	if err != nil {
		fatal(err)
	}
	ref := "optimal"
	if !res.Optimal {
		ref = "best-found (budget hit; deviations are upper bounds)"
	}
	fmt.Printf("reference: A* length %d (%s)\n\n", res.Length, ref)
	fmt.Printf("%-24s %8s %10s\n", "heuristic", "length", "deviation")
	for _, alg := range listsched.All() {
		s, err := alg.Run(g, sys)
		if err != nil {
			fatal(err)
		}
		dev := 100 * (float64(s.Length) - float64(res.Length)) / float64(res.Length)
		fmt.Printf("%-24s %8d %9.1f%%\n", alg.Name, s.Length, dev)
	}
}

// cmdConvert rewrites a graph file between the native text format and STG.
func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "stg", "target format: stg | tg")
	edgeCost := fs.Int("edgecost", 0, "uniform edge cost to attach when importing STG")
	fs.Parse(args)
	g := loadGraphWithSTGCost(fs.Args(), int32(*edgeCost))
	switch *to {
	case "stg":
		if err := stg.Write(os.Stdout, g); err != nil {
			fatal(err)
		}
	case "tg":
		if err := taskgraph.Format(os.Stdout, g); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *to))
	}
}

func loadGraphWithSTGCost(args []string, edgeCost int32) *taskgraph.Graph {
	if len(args) > 0 && strings.HasSuffix(args[0], ".stg") && edgeCost > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		g, err := stg.Read(f, stg.ImportOptions{EdgeCost: edgeCost})
		if err != nil {
			fatal(err)
		}
		return g
	}
	return loadGraph(args)
}
