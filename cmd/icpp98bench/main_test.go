package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOutputPlanStdout: no -out means tables to stdout and JSON in the CWD
// (the historical behaviour).
func TestOutputPlanStdout(t *testing.T) {
	p, err := newOutputPlan("", "md")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w, closeTable, err := p.tableWriter("engines")
	if err != nil {
		t.Fatal(err)
	}
	if w != os.Stdout {
		t.Error("tables not going to stdout")
	}
	if err := closeTable(); err != nil {
		t.Fatal(err)
	}
	path, ok := p.jsonPath("engines")
	if !ok || path != "BENCH_engines.json" {
		t.Errorf("jsonPath = %q, %v; want CWD BENCH_engines.json", path, ok)
	}
}

// TestOutputPlanDevNull: -out /dev/null must discard everything — the old
// behaviour dropped BENCH_<name>.json into the CWD regardless, which the CI
// bench step silently depended on.
func TestOutputPlanDevNull(t *testing.T) {
	p, err := newOutputPlan(os.DevNull, "md")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, ok := p.jsonPath("engines"); ok {
		t.Error("-out os.DevNull still yields a JSON path")
	}
}

// TestOutputPlanDirectory: a directory -out receives per-experiment table
// and JSON files, creating the directory when the path ends in a separator.
func TestOutputPlanDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bench-out") + string(os.PathSeparator)
	p, err := newOutputPlan(dir, "csv")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w, closeTable, err := p.tableWriter("speedup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("a,b\n")); err != nil {
		t.Fatal(err)
	}
	if err := closeTable(); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(filepath.Clean(dir), "BENCH_speedup.csv")
	if _, err := os.Stat(want); err != nil {
		t.Errorf("table file not created at %s: %v", want, err)
	}
	path, ok := p.jsonPath("speedup")
	if !ok || path != filepath.Join(filepath.Clean(dir), "BENCH_speedup.json") {
		t.Errorf("jsonPath = %q, %v", path, ok)
	}
}

// TestOutputPlanFile: a file -out shares one table file across experiments
// and puts JSON reports next to it — not in the CWD.
func TestOutputPlanFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.md")
	p, err := newOutputPlan(out, "md")
	if err != nil {
		t.Fatal(err)
	}
	w1, close1, err := p.tableWriter("engines")
	if err != nil {
		t.Fatal(err)
	}
	w2, close2, err := p.tableWriter("large")
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Error("experiments do not share the -out file")
	}
	if _, err := w1.Write([]byte("# tables\n")); err != nil {
		t.Fatal(err)
	}
	if err := close1(); err != nil {
		t.Fatal(err)
	}
	if err := close2(); err != nil {
		t.Fatal(err)
	}
	if path, ok := p.jsonPath("large"); !ok || path != filepath.Join(dir, "BENCH_large.json") {
		t.Errorf("jsonPath = %q, %v; want next to -out", path, ok)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil || len(data) == 0 {
		t.Fatalf("table file empty or unreadable: %v", err)
	}
}
