// Command icpp98bench regenerates the tables and figures of the paper's
// evaluation (§4):
//
//	icpp98bench -experiment table1            # Table 1: Chen vs A* full vs A*
//	icpp98bench -experiment fig6              # Figure 6: parallel A* speedups
//	icpp98bench -experiment fig7              # Figure 7: parallel Aε* quality/time
//	icpp98bench -experiment ablation          # per-pruning + heuristic ablation
//	icpp98bench -experiment distribution      # parallel placement-policy ablation
//	icpp98bench -experiment deviation         # list heuristics vs proven optima
//	icpp98bench -experiment engines           # every registry engine head-to-head
//	icpp98bench -experiment large             # v > 64: Aε*/portfolio at 80/128/256
//	icpp98bench -experiment all               # everything
//
// The default configuration trims the sweep to laptop-scale sizes; -full
// runs the paper's 10..32 sizes (expect censored cells unless -budget and
// -timeout are raised substantially — the original Table 1 cells took up to
// days on the Intel Paragon).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/procgraph"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1 | fig6 | fig7 | ablation | distribution | deviation | engines | large | all")
		sizes      = flag.String("sizes", "", "comma-separated graph sizes (default 10,12,14,16)")
		ccrs       = flag.String("ccrs", "", "comma-separated CCRs (default 0.1,1,10)")
		ppes       = flag.String("ppes", "", "comma-separated PPE counts for fig6 (default 2,4,8,16)")
		epsilons   = flag.String("epsilons", "", "comma-separated ε for fig7 (default 0.2,0.5)")
		fig7ppes   = flag.Int("fig7ppes", 16, "PPE count for fig7 (paper: 16)")
		seed       = flag.Uint64("seed", 1998, "workload seed")
		budget     = flag.Int64("budget", 300000, "per-cell expansion budget (0 = unlimited)")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-cell wall-clock budget (0 = none)")
		floor      = flag.Int("floor", 2, "parallel communication-period floor (paper: 2)")
		full       = flag.Bool("full", false, "run the paper's full 10..32 size sweep")
		format     = flag.String("format", "md", "output format: md | csv")
		out        = flag.String("out", "", "output file (default stdout)")
		jsonOut    = flag.Bool("json", false, "also write a machine-readable BENCH_<experiment>.json per experiment")
		procs      = flag.Int("procs", 0, "target PEs per instance (0 = v, the paper's setting)")
	)
	flag.Parse()

	cfg := bench.Config{
		Seed:        *seed,
		CellBudget:  *budget,
		CellTimeout: *timeout,
		Fig7PPEs:    *fig7ppes,
		PeriodFloor: *floor,
	}
	if *full {
		cfg.Sizes = bench.Full().Sizes
	}
	if *sizes != "" {
		cfg.Sizes = parseInts(*sizes)
	}
	if *ccrs != "" {
		cfg.CCRs = parseFloats(*ccrs)
	}
	if *ppes != "" {
		cfg.PPEs = parseInts(*ppes)
	}
	if *epsilons != "" {
		cfg.Epsilons = parseFloats(*epsilons)
	}
	if *procs > 0 {
		p := *procs
		cfg.TargetProcs = func(int) *procgraph.System { return procgraph.Complete(p) }
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	run := func(name string) {
		started := time.Now()
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		var res bench.Result
		switch name {
		case "table1":
			res = bench.RunTable1(cfg)
		case "fig6":
			res = bench.RunFig6(cfg)
		case "fig7":
			res = bench.RunFig7(cfg)
		case "ablation":
			res = bench.RunAblation(cfg)
		case "distribution":
			res = bench.RunDistribution(cfg)
		case "deviation":
			res = bench.RunDeviation(cfg)
		case "engines":
			res = bench.RunEngines(cfg)
		case "large":
			res = bench.RunLarge(cfg)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		if err := res.Write(w, *format); err != nil {
			fatal(err)
		}
		if *jsonOut {
			path := "BENCH_" + name + ".json"
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := bench.WriteJSON(f, name, res); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", name, time.Since(started).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, name := range []string{"table1", "fig6", "fig7", "ablation", "distribution", "deviation", "engines", "large"} {
			run(name)
		}
		return
	}
	run(*experiment)
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad integer %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad float %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icpp98bench:", err)
	os.Exit(1)
}
