// Command icpp98bench regenerates the tables and figures of the paper's
// evaluation (§4):
//
//	icpp98bench -experiment table1            # Table 1: Chen vs A* full vs A*
//	icpp98bench -experiment fig6              # Figure 6: parallel A* speedups
//	icpp98bench -experiment fig7              # Figure 7: parallel Aε* quality/time
//	icpp98bench -experiment ablation          # per-pruning + heuristic ablation
//	icpp98bench -experiment pruning           # equivalent-task/FTO/HLoad ablation + gate
//	icpp98bench -experiment distribution      # parallel placement-policy ablation
//	icpp98bench -experiment deviation         # list heuristics vs proven optima
//	icpp98bench -experiment engines           # every registry engine head-to-head
//	icpp98bench -experiment large             # v > 64: Aε*/portfolio at 80/128/256
//	icpp98bench -experiment speedup           # native engine: real multi-core scaling
//	icpp98bench -experiment serve             # serving tier under load: jobs/sec, cache, p50/p99
//	icpp98bench -experiment all               # everything
//
// -checkserve <path> validates an existing BENCH_serve.json instead of
// running anything: the file must parse, carry the serve SLO summary
// (jobs/sec, cache hit rate, latency percentiles, per-stage span
// percentiles), and record no gate failures. CI uses it to keep the
// committed baseline well-formed.
//
// -checkmetrics <url|path> lints a Prometheus text exposition — a live
// daemon's /metrics scraped over HTTP, or a saved page — against the
// 0.0.4 format contract (bench.LintMetrics) and exits non-zero on any
// violation. CI runs it against a freshly started icpp98d.
//
// The default configuration trims the sweep to laptop-scale sizes; -full
// runs the paper's 10..32 sizes (expect censored cells unless -budget and
// -timeout are raised substantially — the original Table 1 cells took up to
// days on the Intel Paragon).
//
// -out controls where every output lands. With a file path, tables go to
// that file and -json reports go to BENCH_<experiment>.json in the same
// directory; with a directory (existing, or any path ending in a path
// separator), tables go to <dir>/BENCH_<experiment>.md (or .csv) and JSON to
// <dir>/BENCH_<experiment>.json; with os.DevNull everything is discarded.
// The speedup experiment doubles as a determinism gate: if any native-engine
// cell disagrees with serial A* on the optimum (or reports a BoundFactor
// other than 1 for a proven cell), the process exits non-zero after writing
// the reports.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/procgraph"
)

func main() {
	var (
		experiment   = flag.String("experiment", "all", "table1 | fig6 | fig7 | ablation | pruning | distribution | deviation | engines | large | speedup | serve | all")
		sizes        = flag.String("sizes", "", "comma-separated graph sizes (default 10,12,14,16; speedup: 80,128)")
		ccrs         = flag.String("ccrs", "", "comma-separated CCRs (default 0.1,1,10)")
		ppes         = flag.String("ppes", "", "comma-separated PPE/worker counts for fig6 and speedup (default 2,4,8,16; speedup: 1,2,4,8)")
		epsilons     = flag.String("epsilons", "", "comma-separated ε for fig7 (default 0.2,0.5)")
		fig7ppes     = flag.Int("fig7ppes", 16, "PPE count for fig7 (paper: 16)")
		seed         = flag.Uint64("seed", 1998, "workload seed")
		budget       = flag.Int64("budget", 300000, "per-cell expansion budget (0 = unlimited)")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-cell wall-clock budget (0 = none)")
		floor        = flag.Int("floor", 2, "parallel communication-period floor (paper: 2)")
		full         = flag.Bool("full", false, "run the paper's full 10..32 size sweep")
		format       = flag.String("format", "md", "output format: md | csv")
		out          = flag.String("out", "", "output path: a file for the tables, or a directory for per-experiment files; controls where -json reports land (default: stdout + CWD)")
		jsonOut      = flag.Bool("json", false, "also write a machine-readable BENCH_<experiment>.json per experiment (next to -out)")
		procs        = flag.Int("procs", 0, "target PEs per instance (0 = v, the paper's setting)")
		rate         = flag.Float64("rate", 0, "serve: offered load in requests/sec (0 = 25)")
		duration     = flag.Duration("duration", 0, "serve: load-phase length (0 = 3s)")
		corpus       = flag.Int("corpus", 0, "serve: distinct instances in the mixed corpus (0 = 5)")
		servev       = flag.Int("servev", 0, "serve: nodes per corpus instance (0 = 20)")
		checkServe   = flag.String("checkserve", "", "validate an existing BENCH_serve.json (parses, SLO fields present, no failures) and exit")
		checkMetrics = flag.String("checkmetrics", "", "lint a Prometheus text exposition (a http(s):// URL to scrape, or a file path) and exit")
		queueSLO     = flag.Duration("queue-slo", 0, "serve: fail the run when queue-wait p99 exceeds this (0 = no gate)")
	)
	flag.Parse()

	if *checkServe != "" {
		if err := bench.CheckServeReport(*checkServe); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: ok\n", *checkServe)
		return
	}
	if *checkMetrics != "" {
		page, err := readMetricsPage(*checkMetrics)
		if err != nil {
			fatal(err)
		}
		if problems := bench.LintMetrics(page); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "icpp98bench: %s: %s\n", *checkMetrics, p)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s: ok\n", *checkMetrics)
		return
	}

	cfg := bench.Config{
		Seed:          *seed,
		CellBudget:    *budget,
		CellTimeout:   *timeout,
		Fig7PPEs:      *fig7ppes,
		PeriodFloor:   *floor,
		ServeRate:     *rate,
		ServeDuration: *duration,
		ServeCorpus:   *corpus,
		ServeV:        *servev,
		ServeQueueSLO: *queueSLO,
	}
	if *full {
		cfg.Sizes = bench.Full().Sizes
	}
	if *sizes != "" {
		cfg.Sizes = parseInts(*sizes)
	}
	if *ccrs != "" {
		cfg.CCRs = parseFloats(*ccrs)
	}
	if *ppes != "" {
		cfg.PPEs = parseInts(*ppes)
	}
	if *epsilons != "" {
		cfg.Epsilons = parseFloats(*epsilons)
	}
	if *procs > 0 {
		p := *procs
		cfg.TargetProcs = func(int) *procgraph.System { return procgraph.Complete(p) }
	}

	plan, err := newOutputPlan(*out, *format)
	if err != nil {
		fatal(err)
	}
	defer plan.Close()

	var gateFailures []string
	run := func(name string) {
		started := time.Now()
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		var res bench.Result
		switch name {
		case "table1":
			res = bench.RunTable1(cfg)
		case "fig6":
			res = bench.RunFig6(cfg)
		case "fig7":
			res = bench.RunFig7(cfg)
		case "ablation":
			res = bench.RunAblation(cfg)
		case "pruning":
			res = bench.RunPruning(cfg)
		case "distribution":
			res = bench.RunDistribution(cfg)
		case "deviation":
			res = bench.RunDeviation(cfg)
		case "engines":
			res = bench.RunEngines(cfg)
		case "large":
			res = bench.RunLarge(cfg)
		case "speedup":
			res = bench.RunSpeedup(cfg)
		case "serve":
			res = bench.RunServe(cfg)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		w, closeTable, err := plan.tableWriter(name)
		if err != nil {
			fatal(err)
		}
		if err := res.Write(w, *format); err != nil {
			fatal(err)
		}
		if err := closeTable(); err != nil {
			fatal(err)
		}
		if *jsonOut {
			if path, ok := plan.jsonPath(name); ok {
				f, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				if err := bench.WriteJSON(f, name, res); err != nil {
					f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
		// Experiments with a built-in correctness gate (speedup's native-vs-
		// serial determinism check) fail the whole process after reporting.
		if g, ok := res.(interface{ FailureList() []string }); ok {
			gateFailures = append(gateFailures, g.FailureList()...)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", name, time.Since(started).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, name := range []string{"table1", "fig6", "fig7", "ablation", "pruning", "distribution", "deviation", "engines", "large", "speedup", "serve"} {
			run(name)
		}
	} else {
		run(*experiment)
	}
	if len(gateFailures) > 0 {
		for _, f := range gateFailures {
			fmt.Fprintln(os.Stderr, "icpp98bench: GATE FAILURE:", f)
		}
		plan.Close()
		os.Exit(1)
	}
}

// outputPlan resolves the -out flag into per-experiment table writers and
// JSON report paths, so -out controls where *every* artifact lands:
//
//   - "" (unset): tables to stdout, JSON to BENCH_<name>.json in the CWD;
//   - os.DevNull: everything is discarded (nothing touches the CWD);
//   - an existing directory, or any path with a trailing separator (created
//     if missing): tables to <dir>/BENCH_<name>.md (or .csv), JSON to
//     <dir>/BENCH_<name>.json;
//   - anything else: one shared table file, JSON next to it.
type outputPlan struct {
	mode   string // "stdout" | "discard" | "dir" | "file"
	dir    string // JSON/table directory for "dir" and "file"
	format string
	file   *os.File // the shared table file of "file" mode
}

func newOutputPlan(out, format string) (*outputPlan, error) {
	switch {
	case out == "":
		return &outputPlan{mode: "stdout", format: format}, nil
	case out == os.DevNull:
		return &outputPlan{mode: "discard", format: format}, nil
	}
	if strings.HasSuffix(out, string(os.PathSeparator)) || strings.HasSuffix(out, "/") {
		if err := os.MkdirAll(out, 0o777); err != nil {
			return nil, err
		}
		return &outputPlan{mode: "dir", dir: filepath.Clean(out), format: format}, nil
	}
	if st, err := os.Stat(out); err == nil && st.IsDir() {
		return &outputPlan{mode: "dir", dir: filepath.Clean(out), format: format}, nil
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, err
	}
	return &outputPlan{mode: "file", dir: filepath.Dir(out), format: format, file: f}, nil
}

// tableWriter returns the destination for one experiment's tables plus a
// close func (a no-op for shared destinations).
func (p *outputPlan) tableWriter(name string) (io.Writer, func() error, error) {
	noop := func() error { return nil }
	switch p.mode {
	case "stdout":
		return os.Stdout, noop, nil
	case "discard":
		return io.Discard, noop, nil
	case "file":
		return p.file, noop, nil
	default: // dir
		ext := "md"
		if p.format == "csv" {
			ext = "csv"
		}
		f, err := os.Create(filepath.Join(p.dir, "BENCH_"+name+"."+ext))
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	}
}

// jsonPath returns where the experiment's JSON report goes; ok is false
// when JSON output is discarded.
func (p *outputPlan) jsonPath(name string) (string, bool) {
	switch p.mode {
	case "stdout":
		return "BENCH_" + name + ".json", true
	case "discard":
		return "", false
	default: // dir, file
		return filepath.Join(p.dir, "BENCH_"+name+".json"), true
	}
}

// Close releases the shared table file, if any.
func (p *outputPlan) Close() error {
	if p.file != nil {
		err := p.file.Close()
		p.file = nil
		return err
	}
	return nil
}

// readMetricsPage fetches a -checkmetrics target: an HTTP(S) URL is
// scraped like a Prometheus server would, anything else is read as a file.
func readMetricsPage(target string) (string, error) {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		resp, err := http.Get(target)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("scrape %s: %s", target, resp.Status)
		}
		return string(data), nil
	}
	data, err := os.ReadFile(target)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad integer %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad float %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icpp98bench:", err)
	os.Exit(1)
}
