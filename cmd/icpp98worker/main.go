// Command icpp98worker is the cluster worker: it registers with a
// -cluster-enabled icpp98d coordinator, pulls leased solve jobs, runs them
// on a local solver pool (one slot per -slots, GOMAXPROCS by default), and
// streams progress and results back over HTTP/JSON.
//
//	icpp98d -addr :8098 -cluster &          # the coordinator
//	icpp98worker -coordinator http://localhost:8098 -slots 8
//
// Add workers on as many machines as you like; the daemon's job API is
// unchanged and falls back to its local pool when no workers are
// registered. SIGINT/SIGTERM drain gracefully: in-flight jobs are handed
// back to the coordinator for re-leasing before the process exits.
//
// A coordinator restart is survivable: the worker keeps solving through
// the outage, re-registers when the daemon answers again, and presents
// its held lease tokens — a durable-store (-store-dir) coordinator adopts
// them within its -adopt-grace window and the solves conclude normally.
// Worker and coordinator must speak the same cluster protocol version; a
// mismatch is refused at registration with a protocol_mismatch error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8098", "coordinator base URL (an icpp98d started with -cluster)")
	name := flag.String("name", "", "worker label in listings (default: hostname)")
	slots := flag.Int("slots", 0, "concurrent solves (0 = GOMAXPROCS)")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "icpp98worker: "+format+"\n", args...)
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		logf("bad -log-level %q: %v", *logLevel, err)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, opts))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, opts))
	default:
		logf("bad -log-format %q (want text or json)", *logFormat)
		os.Exit(2)
	}
	w := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: *coordinator,
		Name:        *name,
		Slots:       *slots,
		Logf: func(format string, args ...any) {
			if !*quiet {
				logf(format, args...)
			}
		},
		Logger: logger,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		logf("%v", err)
		os.Exit(1)
	}
	logf("drained, exiting")
}
