// Package repro is a Go reproduction of Kwok & Ahmad, "Optimal and
// Near-Optimal Allocation of Precedence-Constrained Tasks to Parallel
// Processors: Defying the High Complexity Using Effective Search
// Techniques" (ICPP 1998): optimal multiprocessor DAG scheduling by A*
// state-space search with processor-isomorphism / node-equivalence /
// upper-bound pruning, a bulk-synchronous parallel A*, the approximate Aε*
// with a proven (1+ε) bound, and the Chen & Yu branch-and-bound baseline.
//
// This package is the public facade over the implementation packages in
// internal/; it re-exports the types a scheduler user needs and offers
// one-call entry points:
//
//	g := repro.NewGraphBuilder("app")
//	a := g.AddNode(2)
//	b := g.AddNode(3)
//	g.AddEdge(a, b, 1)
//	graph, _ := g.Build()
//	sys := repro.Ring(3)
//	res, _ := repro.ScheduleOptimal(graph, sys)
//	fmt.Println(res.Length, res.Optimal)
//	fmt.Print(res.Schedule.Gantt(8))
//
// Every optimal engine is a named plug-in in the internal/engine registry
// (Engines lists them); Solve runs any of them by name, SolveBatch runs
// many requests over a bounded worker pool, and SolvePortfolio races
// several engines on one instance, cancelling the losers as soon as one
// proves optimality. NewServer exposes the same pool over HTTP as an async
// job API (cmd/icpp98d is the packaged daemon, `icpp98 client` the
// command-line client, docs/API.md the endpoint reference).
//
// See README.md for the quickstart and the engine table, and DESIGN.md for
// the system inventory and benchmark instructions.
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/procgraph"
	"repro/internal/schedule"
	"repro/internal/server"
	"repro/internal/solverpool"
	"repro/internal/stg"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Re-exported model types.
type (
	// Graph is a node- and edge-weighted task DAG.
	Graph = taskgraph.Graph
	// GraphBuilder assembles a Graph.
	GraphBuilder = taskgraph.Builder
	// System is a target multiprocessor (or PPE interconnect).
	System = procgraph.System
	// SystemConfig customizes speeds and the link model.
	SystemConfig = procgraph.Config
	// Schedule is a complete, validatable schedule.
	Schedule = schedule.Schedule
	// Placement is one task's processor and time window.
	Placement = schedule.Placement
	// Result is a solver outcome: schedule, proven length, optimality flag,
	// bound factor, and search statistics.
	Result = core.Result
	// SearchStats counts search effort.
	SearchStats = core.Stats
	// EngineConfig is the consolidated configuration every registry engine
	// accepts: pruning toggles, ε, heuristic, upper bound, expansion/time
	// budgets, tracers, and the parallel/depth-first extras.
	EngineConfig = engine.Config
	// SolveOptions configures the serial engines. It is the same type as
	// EngineConfig — every engine shares one configuration.
	SolveOptions = engine.Config
	// ParallelOptions configures the parallel engine (same type as
	// EngineConfig).
	ParallelOptions = engine.Config
	// DepthFirstOptions configures the memory-light DFBB and IDA* engines
	// (same type as EngineConfig).
	DepthFirstOptions = engine.Config
	// ListOptions configures the list-scheduling heuristic.
	ListOptions = listsched.Options
	// RandomGraphConfig parameterizes the paper's §4.1 workload generator.
	RandomGraphConfig = gen.RandomConfig
	// SearchTracer observes expansion/generation events of a search.
	SearchTracer = core.Tracer
	// SearchRecorder records a search into a Figure 3/5-style tree
	// (assign to SolveOptions.Tracer, or EngineConfig.TracerFor for the
	// parallel engine via its ForPPE method) and renders it as ASCII or
	// Graphviz.
	SearchRecorder = trace.Recorder
	// STGImportOptions configures ReadSTG.
	STGImportOptions = stg.ImportOptions

	// Pool is the concurrent batch/portfolio solve service: a bounded
	// worker pool with model memoization by instance digest.
	Pool = solverpool.Pool
	// SolveRequest is one batch job: an instance plus engine name and
	// configuration.
	SolveRequest = solverpool.Request
	// SolveResponse is one batch outcome.
	SolveResponse = solverpool.Response
	// PortfolioResult reports an engine race: the winner, its result, and
	// the cancelled losers with their partial stats.
	PortfolioResult = solverpool.PortfolioResult

	// Server is the network solve daemon: an http.Handler exposing the
	// async job API of internal/server (submit, status, progress stream,
	// result, cancel) over the solver pool. cmd/icpp98d serves one.
	Server = server.Server
	// ServerConfig sizes a Server: workers, job-store bound, result TTL.
	ServerConfig = server.Config
	// JobRequest is the wire form of a job submission (POST /v1/jobs);
	// shared by the daemon and the `icpp98 client` subcommand.
	JobRequest = server.SubmitRequest
	// JobConfig is the engine budget/variant surface of a JobRequest.
	JobConfig = server.JobConfig
	// JobStatus is the wire form of a job's state and live progress.
	JobStatus = server.JobStatus
	// JobResult is the wire form of a finished schedule.
	JobResult = server.JobResult
)

// NewServer builds the network solve daemon. Serve it with net/http and
// call Close on shutdown to cancel outstanding jobs and drain workers:
//
//	srv := repro.NewServer(repro.ServerConfig{Workers: 8})
//	defer srv.Close()
//	http.ListenAndServe(":8098", srv)
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewSearchRecorder starts recording a search over g.
func NewSearchRecorder(g *Graph) *SearchRecorder { return trace.NewRecorder(g) }

// ReadSTG parses a Standard Task Graph Set instance.
var ReadSTG = stg.Read

// WriteSTG emits a graph in Standard Task Graph format (edge costs are not
// representable and are dropped).
var WriteSTG = stg.Write

// Pruning/feature toggles of the serial and parallel A* engines.
const (
	DisableIsomorphism     = core.DisableIsomorphism
	DisableEquivalence     = core.DisableEquivalence
	DisableUpperBound      = core.DisableUpperBound
	DisablePriorityOrder   = core.DisablePriorityOrder
	DisableEquivalentTasks = core.DisableEquivalentTasks
	DisableFTO             = core.DisableFTO
	DisableAllPruning      = core.DisableAllPruning
)

// Heuristic selectors for EngineConfig.HFunc: the paper's h (default), the
// strengthened admissible variant recommended for large instances, and the
// load-balance/critical-path tier on top of it.
const (
	HPaper = core.HPaper
	HPlus  = core.HPlus
	HLoad  = core.HLoad
)

// MaxTasks is the largest task graph every engine accepts — the capacity of
// a search state's multi-word scheduled-set mask. Oversize graphs are
// rejected by Solve (and by the daemon at submit time) with an error naming
// this cap.
const MaxTasks = core.MaxNodes

// NewGraphBuilder starts a task graph.
func NewGraphBuilder(name string) *GraphBuilder { return taskgraph.NewBuilder(name) }

// Topology constructors for target systems and PPE interconnects.
var (
	Complete  = procgraph.Complete
	Ring      = procgraph.Ring
	Chain     = procgraph.Chain
	Star      = procgraph.Star
	Mesh      = procgraph.Mesh
	Torus     = procgraph.Torus
	Hypercube = procgraph.Hypercube
)

// CompleteWith builds a fully connected system with a Config (heterogeneous
// speeds, uniform links).
var CompleteWith = procgraph.CompleteWith

// Workload generators.
var (
	// RandomGraph generates a §4.1 random DAG.
	RandomGraph = gen.Random
	// PaperExample returns the Figure 1 worked-example DAG (optimal length
	// 14 on Ring(3)).
	PaperExample = gen.PaperExample
	// GaussianElimination, FFT, ForkJoin, Wavefront build classic
	// application task graphs.
	GaussianElimination = gen.GaussianElimination
	FFT                 = gen.FFT
	ForkJoin            = gen.ForkJoin
	Wavefront           = gen.Wavefront
)

// Engines returns the names of every registered search engine, sorted.
func Engines() []string { return engine.Names() }

// EngineInfo describes one registered engine for listings.
type EngineInfo struct {
	Name        string
	Section     string // paper section the engine implements
	Description string
}

// EngineTable returns metadata for every registered engine, sorted by name.
func EngineTable() []EngineInfo {
	var out []EngineInfo
	for _, e := range engine.All() {
		section, desc := engine.Describe(e)
		out = append(out, EngineInfo{Name: e.Name(), Section: section, Description: desc})
	}
	return out
}

// Solve runs the named registry engine ("astar", "aeps", "dfbb", "ida",
// "bnb", "parallel", ...) on the instance. Cancelling ctx stops the search
// promptly and yields the best schedule found so far with Optimal=false.
func Solve(ctx context.Context, g *Graph, sys *System, engineName string, cfg EngineConfig) (*Result, error) {
	return engine.Solve(ctx, engineName, g, sys, cfg)
}

// ScheduleOptimal finds a provably optimal schedule with the serial A* of
// §3.1–3.2 (all prunings enabled).
func ScheduleOptimal(g *Graph, sys *System) (*Result, error) {
	return Solve(context.Background(), g, sys, "astar", EngineConfig{})
}

// ScheduleOptimalWith is ScheduleOptimal with explicit options (pruning
// toggles, cutoffs, ε — Epsilon > 0 selects the Aε* engine).
func ScheduleOptimalWith(g *Graph, sys *System, opt SolveOptions) (*Result, error) {
	name := "astar"
	if opt.Epsilon > 0 {
		name = "aeps"
	}
	return Solve(context.Background(), g, sys, name, opt)
}

// ScheduleApprox finds a schedule within (1+eps) of optimal with the Aε* of
// §3.4. eps <= 0 degenerates to the exact serial A* (a 0-deviation bound),
// so sweeps down to zero keep their guarantee.
func ScheduleApprox(g *Graph, sys *System, eps float64) (*Result, error) {
	if eps <= 0 {
		return Solve(context.Background(), g, sys, "astar", EngineConfig{})
	}
	return Solve(context.Background(), g, sys, "aeps", EngineConfig{Epsilon: eps})
}

// ScheduleParallel finds a provably optimal schedule with the parallel A*
// of §3.3 on the given number of PPE workers.
func ScheduleParallel(g *Graph, sys *System, ppes int) (*Result, error) {
	return Solve(context.Background(), g, sys, "parallel", EngineConfig{PPEs: ppes})
}

// ScheduleParallelWith is ScheduleParallel with explicit options
// (interconnect, ε, distribution policy, period floor, cutoffs).
func ScheduleParallelWith(g *Graph, sys *System, opt ParallelOptions) (*Result, error) {
	return Solve(context.Background(), g, sys, "parallel", opt)
}

// ScheduleList runs the linear-time list-scheduling heuristic (the paper's
// upper-bound provider, ref. [14]) — fast, feasible, no optimality
// guarantee.
func ScheduleList(g *Graph, sys *System, opt ListOptions) (*Schedule, error) {
	return listsched.Schedule(g, sys, opt)
}

// NamedHeuristic pairs a display name with a polynomial-time scheduling
// heuristic, for deviation studies against the optimal engines.
type NamedHeuristic = listsched.Named

// Heuristics returns every list-scheduling heuristic in the library: the
// static-priority scheduler (b-level / bl+tl / static-level, optional
// insertion) and the classic dynamic heuristics ETF, MCP, and DLS.
func Heuristics() []NamedHeuristic { return listsched.All() }

// ScheduleDFBB finds a provably optimal schedule by depth-first
// branch-and-bound: the same state space, cost function, and §3.2 prunings
// as the A* engine, but O(v) retained states — the memory-light answer to
// the "huge memory requirement" problem the paper's §1 calls out.
func ScheduleDFBB(g *Graph, sys *System, opt DepthFirstOptions) (*Result, error) {
	return Solve(context.Background(), g, sys, "dfbb", opt)
}

// ScheduleIDAStar finds a provably optimal schedule by iterative-deepening
// A*: depth-first passes under a rising f threshold, no OPEN or CLOSED
// lists at all.
func ScheduleIDAStar(g *Graph, sys *System, opt DepthFirstOptions) (*Result, error) {
	return Solve(context.Background(), g, sys, "ida", opt)
}

// ScheduleBnB runs the Chen & Yu branch-and-bound baseline the paper
// compares against (§2, §4.2).
func ScheduleBnB(g *Graph, sys *System) (*Schedule, int32, bool, error) {
	res, err := Solve(context.Background(), g, sys, "bnb", EngineConfig{})
	if err != nil {
		return nil, 0, false, err
	}
	return res.Schedule, res.Length, res.Optimal, nil
}

// NewPool returns a concurrent solve service running at most workers
// solves at once (workers < 1 selects GOMAXPROCS). Pools memoize the
// compiled search model of each distinct (graph, system) instance, so
// resolving the same instance — or racing engines on it — costs one model
// build.
func NewPool(workers int) *Pool { return solverpool.New(workers) }

// defaultPool serves the package-level batch/portfolio calls.
var defaultPool = solverpool.New(0)

// SolveBatch runs many solve requests concurrently over a bounded worker
// pool and returns the responses in request order. Each request carries
// its own engine name and budget; cancelling ctx stops everything promptly.
func SolveBatch(ctx context.Context, reqs []SolveRequest) []SolveResponse {
	return defaultPool.SolveBatch(ctx, reqs)
}

// SolvePortfolio races the named engines (all registered engines when
// names is empty) on one instance, returns as soon as one proves
// optimality, and cancels the rest; the losers' partial stats record how
// far they got before being stopped.
func SolvePortfolio(ctx context.Context, g *Graph, sys *System, names []string, cfg EngineConfig) (*PortfolioResult, error) {
	return defaultPool.SolvePortfolio(ctx, g, sys, names, cfg)
}
