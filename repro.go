// Package repro is a Go reproduction of Kwok & Ahmad, "Optimal and
// Near-Optimal Allocation of Precedence-Constrained Tasks to Parallel
// Processors: Defying the High Complexity Using Effective Search
// Techniques" (ICPP 1998): optimal multiprocessor DAG scheduling by A*
// state-space search with processor-isomorphism / node-equivalence /
// upper-bound pruning, a bulk-synchronous parallel A*, the approximate Aε*
// with a proven (1+ε) bound, and the Chen & Yu branch-and-bound baseline.
//
// This package is the public facade over the implementation packages in
// internal/; it re-exports the types a scheduler user needs and offers
// one-call entry points:
//
//	g := repro.NewGraphBuilder("app")
//	a := g.AddNode(2)
//	b := g.AddNode(3)
//	g.AddEdge(a, b, 1)
//	graph, _ := g.Build()
//	sys := repro.Ring(3)
//	res, _ := repro.ScheduleOptimal(graph, sys)
//	fmt.Println(res.Length, res.Optimal)
//	fmt.Print(res.Schedule.Gantt(8))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package repro

import (
	"repro/internal/bnb"
	"repro/internal/core"
	"repro/internal/dfbb"
	"repro/internal/gen"
	"repro/internal/listsched"
	"repro/internal/parallel"
	"repro/internal/procgraph"
	"repro/internal/schedule"
	"repro/internal/stg"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// Re-exported model types.
type (
	// Graph is a node- and edge-weighted task DAG.
	Graph = taskgraph.Graph
	// GraphBuilder assembles a Graph.
	GraphBuilder = taskgraph.Builder
	// System is a target multiprocessor (or PPE interconnect).
	System = procgraph.System
	// SystemConfig customizes speeds and the link model.
	SystemConfig = procgraph.Config
	// Schedule is a complete, validatable schedule.
	Schedule = schedule.Schedule
	// Placement is one task's processor and time window.
	Placement = schedule.Placement
	// Result is a solver outcome: schedule, proven length, optimality flag,
	// bound factor, and search statistics.
	Result = core.Result
	// SearchStats counts search effort.
	SearchStats = core.Stats
	// SolveOptions configures the serial engines.
	SolveOptions = core.Options
	// ParallelOptions configures the parallel engine.
	ParallelOptions = parallel.Options
	// ListOptions configures the list-scheduling heuristic.
	ListOptions = listsched.Options
	// DepthFirstOptions configures the memory-light DFBB and IDA* engines.
	DepthFirstOptions = dfbb.Options
	// RandomGraphConfig parameterizes the paper's §4.1 workload generator.
	RandomGraphConfig = gen.RandomConfig
	// SearchTracer observes expansion/generation events of a search.
	SearchTracer = core.Tracer
	// SearchRecorder records a search into a Figure 3/5-style tree
	// (assign to SolveOptions.Tracer, or ParallelOptions.TracerFor via
	// its ForPPE method) and renders it as ASCII or Graphviz.
	SearchRecorder = trace.Recorder
	// STGImportOptions configures ReadSTG.
	STGImportOptions = stg.ImportOptions
)

// NewSearchRecorder starts recording a search over g.
func NewSearchRecorder(g *Graph) *SearchRecorder { return trace.NewRecorder(g) }

// ReadSTG parses a Standard Task Graph Set instance.
var ReadSTG = stg.Read

// WriteSTG emits a graph in Standard Task Graph format (edge costs are not
// representable and are dropped).
var WriteSTG = stg.Write

// Pruning/feature toggles of the serial and parallel A* engines.
const (
	DisableIsomorphism   = core.DisableIsomorphism
	DisableEquivalence   = core.DisableEquivalence
	DisableUpperBound    = core.DisableUpperBound
	DisablePriorityOrder = core.DisablePriorityOrder
	DisableAllPruning    = core.DisableAllPruning
)

// NewGraphBuilder starts a task graph.
func NewGraphBuilder(name string) *GraphBuilder { return taskgraph.NewBuilder(name) }

// Topology constructors for target systems and PPE interconnects.
var (
	Complete  = procgraph.Complete
	Ring      = procgraph.Ring
	Chain     = procgraph.Chain
	Star      = procgraph.Star
	Mesh      = procgraph.Mesh
	Torus     = procgraph.Torus
	Hypercube = procgraph.Hypercube
)

// CompleteWith builds a fully connected system with a Config (heterogeneous
// speeds, uniform links).
var CompleteWith = procgraph.CompleteWith

// Workload generators.
var (
	// RandomGraph generates a §4.1 random DAG.
	RandomGraph = gen.Random
	// PaperExample returns the Figure 1 worked-example DAG (optimal length
	// 14 on Ring(3)).
	PaperExample = gen.PaperExample
	// GaussianElimination, FFT, ForkJoin, Wavefront build classic
	// application task graphs.
	GaussianElimination = gen.GaussianElimination
	FFT                 = gen.FFT
	ForkJoin            = gen.ForkJoin
	Wavefront           = gen.Wavefront
)

// ScheduleOptimal finds a provably optimal schedule with the serial A* of
// §3.1–3.2 (all prunings enabled).
func ScheduleOptimal(g *Graph, sys *System) (*Result, error) {
	return core.Solve(g, sys, core.Options{})
}

// ScheduleOptimalWith is ScheduleOptimal with explicit options (pruning
// toggles, cutoffs, ε).
func ScheduleOptimalWith(g *Graph, sys *System, opt SolveOptions) (*Result, error) {
	return core.Solve(g, sys, opt)
}

// ScheduleApprox finds a schedule within (1+eps) of optimal with the Aε* of
// §3.4.
func ScheduleApprox(g *Graph, sys *System, eps float64) (*Result, error) {
	return core.Solve(g, sys, core.Options{Epsilon: eps})
}

// ScheduleParallel finds a provably optimal schedule with the parallel A*
// of §3.3 on the given number of PPE workers.
func ScheduleParallel(g *Graph, sys *System, ppes int) (*Result, error) {
	return parallel.Solve(g, sys, parallel.Options{PPEs: ppes})
}

// ScheduleParallelWith is ScheduleParallel with explicit options
// (interconnect, ε, distribution policy, period floor, cutoffs).
func ScheduleParallelWith(g *Graph, sys *System, opt ParallelOptions) (*Result, error) {
	return parallel.Solve(g, sys, opt)
}

// ScheduleList runs the linear-time list-scheduling heuristic (the paper's
// upper-bound provider, ref. [14]) — fast, feasible, no optimality
// guarantee.
func ScheduleList(g *Graph, sys *System, opt ListOptions) (*Schedule, error) {
	return listsched.Schedule(g, sys, opt)
}

// NamedHeuristic pairs a display name with a polynomial-time scheduling
// heuristic, for deviation studies against the optimal engines.
type NamedHeuristic = listsched.Named

// Heuristics returns every list-scheduling heuristic in the library: the
// static-priority scheduler (b-level / bl+tl / static-level, optional
// insertion) and the classic dynamic heuristics ETF, MCP, and DLS.
func Heuristics() []NamedHeuristic { return listsched.All() }

// ScheduleDFBB finds a provably optimal schedule by depth-first
// branch-and-bound: the same state space, cost function, and §3.2 prunings
// as the A* engine, but O(v) retained states — the memory-light answer to
// the "huge memory requirement" problem the paper's §1 calls out.
func ScheduleDFBB(g *Graph, sys *System, opt DepthFirstOptions) (*Result, error) {
	return dfbb.Solve(g, sys, opt)
}

// ScheduleIDAStar finds a provably optimal schedule by iterative-deepening
// A*: depth-first passes under a rising f threshold, no OPEN or CLOSED
// lists at all.
func ScheduleIDAStar(g *Graph, sys *System, opt DepthFirstOptions) (*Result, error) {
	return dfbb.SolveIDA(g, sys, opt)
}

// ScheduleBnB runs the Chen & Yu branch-and-bound baseline the paper
// compares against (§2, §4.2).
func ScheduleBnB(g *Graph, sys *System) (*Schedule, int32, bool, error) {
	res, err := bnb.Solve(g, sys, bnb.Options{})
	if err != nil {
		return nil, 0, false, err
	}
	return res.Schedule, res.Length, res.Optimal, nil
}
